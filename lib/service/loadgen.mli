(** Load generator: stream a synthetic trace at a daemon over the socket
    and measure what comes back.

    Jobs come from {!Workload.Scenario.submission_stream}, so a daemon
    configured with the matching {!Workload.Scenario.split_and_map}
    endowment accepts every submission — org assignment and FIFO ranks
    line up by construction.  The generator paces submissions at a target
    arrival rate (wall-clock), retries on backpressure, and records the
    submit-to-ack round trip in an {!Obs.Metrics} histogram
    (["loadgen.ack_latency_us"], microseconds).  Submit-to-start latency
    is the {e server's} ["sim.job_wait"] histogram (simulated time),
    surfaced through the final STATUS response when the daemon runs with
    [--metrics]. *)

type config = {
  addr : Addr.t;
  spec : Workload.Scenario.spec;
  seed : int;
  rate : float;  (** target submissions per wall-clock second; 0 = as fast as possible *)
  count : int;  (** number of submissions to attempt *)
  drain : bool;  (** send [drain] when done (shuts the daemon down) *)
}

type report = {
  submitted : int;  (** distinct jobs attempted *)
  accepted : int;
  rejected : int;  (** protocol-level rejections other than backpressure *)
  backpressured : int;  (** backpressure responses absorbed by retrying *)
  errors : int;  (** transport failures (run stops at the first) *)
  wall_seconds : float;
  achieved_rate : float;  (** accepted / wall_seconds *)
  ack_latency : Obs.Metrics.summary;  (** submit-to-ack, microseconds *)
  job_wait : Obs.Metrics.summary option;
      (** server-side submit-to-start (simulated time units) *)
}

val run : config -> (report, string) result
(** [Error] only for failures before the first submission (connect,
    empty stream); transport failures mid-run come back as a report with
    [errors > 0]. *)

val report_to_json : report -> Obs.Json.t
val pp_report : Format.formatter -> report -> unit
