type config = {
  addr : Addr.t;
  spec : Workload.Scenario.spec;
  seed : int;
  rate : float;
  count : int;
  drain : bool;
  policy : Retry.policy;
  timeout_s : float;
}

type report = {
  submitted : int;
  accepted : int;
  rejected : int;
  backpressured : int;
  retries : int;
  reconnects : int;
  gave_up : int;
  errors : int;
  server_shed : int option;
  wall_seconds : float;
  achieved_rate : float;
  ack_latency : Obs.Metrics.summary;
  job_wait : Obs.Metrics.summary option;
}

let empty_summary =
  { Obs.Metrics.count = 0; p50 = 0.; p90 = 0.; p99 = 0.; max = 0. }

let find_histogram name =
  List.find_map
    (function
      | n, Obs.Metrics.Histogram s when n = name -> Some s | _ -> None)
    (Obs.Metrics.snapshot ())

let run cfg =
  let horizon = cfg.spec.Workload.Scenario.horizon in
  let jobs =
    Workload.Scenario.submission_stream cfg.spec ~seed:cfg.seed
    |> Seq.take_while (fun (j : Core.Job.t) -> j.Core.Job.release < horizon)
    |> Seq.take cfg.count
  in
  (* The retry jitter stream must not perturb the workload: the job
     stream consumes [seed] directly, the client a split of it. *)
  let rng = Fstats.Rng.split (Fstats.Rng.create ~seed:cfg.seed) in
  let conn =
    Client.Resilient.create ~policy:cfg.policy ~timeout_s:cfg.timeout_s ~rng
      cfg.addr
  in
  Fun.protect
    ~finally:(fun () -> Client.Resilient.close conn)
    (fun () ->
      Obs.Metrics.set_enabled true;
      let hist = Obs.Metrics.histogram "loadgen.ack_latency_us" in
      let submitted = ref 0 in
      let accepted = ref 0 in
      let rejected = ref 0 in
      let errors = ref 0 in
      let t0 = Unix.gettimeofday () in
      let pace () =
        if cfg.rate > 0. then begin
          let due = t0 +. (float_of_int !submitted /. cfg.rate) in
          let slack = due -. Unix.gettimeofday () in
          if slack > 0. then Unix.sleepf slack
        end
      in
      (* Backpressure and transient transport failures are absorbed by
         the resilient client within its budget — the queue bound turns
         overload into client-side waiting, not loss.  A job whose
         budget runs out is abandoned and the run continues. *)
      let send req =
        let sent_at = Obs.Clock.now_ns () in
        let outcome = Client.Resilient.call conn req in
        Obs.Metrics.observe hist (Obs.Clock.elapsed sent_at *. 1e6);
        match outcome with
        | Ok (Protocol.Submit_ok _) -> incr accepted
        | Ok (Protocol.Error { code = Protocol.Backpressure; _ }) ->
            (* budget exhausted while still backpressured *)
            ()
        | Ok _ -> incr rejected
        | Error _ -> incr errors
      in
      Seq.iter
        (fun (j : Core.Job.t) ->
          pace ();
          incr submitted;
          send
            (Protocol.Submit
               {
                 org = j.Core.Job.org;
                 user = j.Core.Job.user;
                 release = j.Core.Job.release;
                 size = j.Core.Job.size;
                 cid = 0;
                 cseq = 0;
               }))
        jobs;
      let wall_seconds = Unix.gettimeofday () -. t0 in
      let job_wait, server_shed =
        match Client.Resilient.call conn Protocol.Status with
        | Ok (Protocol.Status_ok st) ->
            (st.Protocol.job_wait, Some st.Protocol.shed)
        | Ok _ | Error _ -> (None, None)
      in
      if cfg.drain then
        (match Client.Resilient.call conn (Protocol.Drain { detail = false }) with
        | Ok _ -> ()
        | Error _ -> incr errors);
      let stats = Client.Resilient.stats conn in
      let ack_latency =
        Option.value (find_histogram "loadgen.ack_latency_us")
          ~default:empty_summary
      in
      if !submitted = 0 then Error "empty submission stream"
      else
        Ok
          {
            submitted = !submitted;
            accepted = !accepted;
            rejected = !rejected;
            backpressured = stats.Client.Resilient.backpressured;
            retries = stats.Client.Resilient.retries;
            reconnects = stats.Client.Resilient.reconnects;
            gave_up = stats.Client.Resilient.gave_up;
            errors = !errors;
            server_shed;
            wall_seconds;
            achieved_rate =
              (if wall_seconds > 0. then float_of_int !accepted /. wall_seconds
               else 0.);
            ack_latency;
            job_wait;
          })

let summary_json (s : Obs.Metrics.summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int s.Obs.Metrics.count);
      ("p50", Obs.Json.Float s.Obs.Metrics.p50);
      ("p90", Obs.Json.Float s.Obs.Metrics.p90);
      ("p99", Obs.Json.Float s.Obs.Metrics.p99);
      ("max", Obs.Json.Float s.Obs.Metrics.max);
    ]

let report_to_json r =
  let open Obs.Json in
  Obj
    (List.concat
       [
         [
           ("submitted", Int r.submitted);
           ("accepted", Int r.accepted);
           ("rejected", Int r.rejected);
           ("backpressured", Int r.backpressured);
           ("retries", Int r.retries);
           ("reconnects", Int r.reconnects);
           ("gave_up", Int r.gave_up);
           ("errors", Int r.errors);
         ];
         (match r.server_shed with
         | None -> []
         | Some n -> [ ("server_shed", Int n) ]);
         [
           ("wall_seconds", Float r.wall_seconds);
           ("achieved_rate", Float r.achieved_rate);
           ("ack_latency_us", summary_json r.ack_latency);
         ];
         (match r.job_wait with
         | None -> []
         | Some s -> [ ("job_wait", summary_json s) ]);
       ])

let pp_summary ppf (s : Obs.Metrics.summary) =
  Format.fprintf ppf "p50 %.0f  p90 %.0f  p99 %.0f  max %.0f (n=%d)"
    s.Obs.Metrics.p50 s.Obs.Metrics.p90 s.Obs.Metrics.p99 s.Obs.Metrics.max
    s.Obs.Metrics.count

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>submitted %d  accepted %d  rejected %d  backpressured %d  errors %d@,\
     retries %d  reconnects %d  gave up %d%s@,\
     wall %.2fs  rate %.0f/s@,\
     ack latency (us): %a@]"
    r.submitted r.accepted r.rejected r.backpressured r.errors r.retries
    r.reconnects r.gave_up
    (match r.server_shed with
    | None -> ""
    | Some n -> Printf.sprintf "  server shed %d" n)
    r.wall_seconds r.achieved_rate pp_summary r.ack_latency;
  match r.job_wait with
  | None -> ()
  | Some s ->
      Format.fprintf ppf "@,@[job wait (sim time): %a@]" pp_summary s
