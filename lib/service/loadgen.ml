type config = {
  addr : Addr.t;
  spec : Workload.Scenario.spec;
  seed : int;
  rate : float;
  count : int;
  drain : bool;
  policy : Retry.policy;
  timeout_s : float;
  connections : int;
  groups : int;
  window : int;
}

type report = {
  submitted : int;
  accepted : int;
  rejected : int;
  backpressured : int;
  retries : int;
  reconnects : int;
  gave_up : int;
  errors : int;
  server_shed : int option;
  wall_seconds : float;
  achieved_rate : float;
  ack_latency : Obs.Metrics.summary;
  job_wait : Obs.Metrics.summary option;
}

let empty_summary =
  { Obs.Metrics.count = 0; p50 = 0.; p90 = 0.; p99 = 0.; max = 0. }

let find_histogram name =
  List.find_map
    (function
      | n, Obs.Metrics.Histogram s when n = name -> Some s | _ -> None)
    (Obs.Metrics.snapshot ())

(* Owner of [o] under the contiguous balanced org partition — the same
   formula as Partition.make, restated here because the generator mirrors
   the server's partition without holding a service Config. *)
let group_of_org ~norgs ~groups o =
  let rec go g = if (g + 1) * norgs / groups > o then g else go (g + 1) in
  go 0

(* Per-connection counters, merged into the report after the joins. *)
type agg = {
  a_submitted : int;
  a_accepted : int;
  a_rejected : int;
  a_backpressured : int;
  a_retries : int;
  a_reconnects : int;
  a_gave_up : int;
  a_errors : int;
}

let zero_agg =
  {
    a_submitted = 0;
    a_accepted = 0;
    a_rejected = 0;
    a_backpressured = 0;
    a_retries = 0;
    a_reconnects = 0;
    a_gave_up = 0;
    a_errors = 0;
  }

let sum_agg a b =
  {
    a_submitted = a.a_submitted + b.a_submitted;
    a_accepted = a.a_accepted + b.a_accepted;
    a_rejected = a.a_rejected + b.a_rejected;
    a_backpressured = a.a_backpressured + b.a_backpressured;
    a_retries = a.a_retries + b.a_retries;
    a_reconnects = a.a_reconnects + b.a_reconnects;
    a_gave_up = a.a_gave_up + b.a_gave_up;
    a_errors = a.a_errors + b.a_errors;
  }

let submit_of_job ~cid ~cseq ~trace (j : Core.Job.t) =
  Protocol.Submit
    {
      org = j.Core.Job.org;
      user = j.Core.Job.user;
      release = j.Core.Job.release;
      size = j.Core.Job.size;
      cid;
      cseq;
      trace;
    }

(* --- Closed loop: one Resilient client, one request in flight ----------- *)

let closed_loop cfg ~hist ~rng ~t0 ~rate (jobs : Core.Job.t array) =
  let conn =
    Client.Resilient.create ~policy:cfg.policy ~timeout_s:cfg.timeout_s ~rng
      cfg.addr
  in
  Fun.protect
    ~finally:(fun () -> Client.Resilient.close conn)
    (fun () ->
      let submitted = ref 0 in
      let accepted = ref 0 in
      let rejected = ref 0 in
      let errors = ref 0 in
      let pace () =
        if rate > 0. then begin
          let due = t0 +. (float_of_int !submitted /. rate) in
          let slack = due -. Unix.gettimeofday () in
          if slack > 0. then Unix.sleepf slack
        end
      in
      (* Backpressure and transient transport failures are absorbed by
         the resilient client within its budget — the queue bound turns
         overload into client-side waiting, not loss.  A job whose
         budget runs out is abandoned and the run continues. *)
      Array.iter
        (fun j ->
          pace ();
          incr submitted;
          let sent_at = Obs.Clock.now_ns () in
          let outcome =
            Client.Resilient.call conn (submit_of_job ~cid:0 ~cseq:0 ~trace:0 j)
          in
          Obs.Metrics.observe hist (Obs.Clock.elapsed sent_at *. 1e6);
          match outcome with
          | Ok (Protocol.Submit_ok _) -> incr accepted
          | Ok (Protocol.Error { code = Protocol.Backpressure; _ }) ->
              (* budget exhausted while still backpressured *)
              ()
          | Ok _ -> incr rejected
          | Error _ -> incr errors)
        jobs;
      let stats = Client.Resilient.stats conn in
      {
        a_submitted = !submitted;
        a_accepted = !accepted;
        a_rejected = !rejected;
        a_backpressured = stats.Client.Resilient.backpressured;
        a_retries = stats.Client.Resilient.retries;
        a_reconnects = stats.Client.Resilient.reconnects;
        a_gave_up = stats.Client.Resilient.gave_up;
        a_errors = !errors;
      })

(* --- Open loop: one raw socket, up to [window] unacked requests ----------
   A closed loop serializes on the server's fsync, which makes group
   commit invisible (every batch has one ack to cover).  The windowed
   mode keeps [window] stamped submissions in flight so a single fsync
   can ack many, at the price of open-loop semantics: a [Backpressure]
   answer is counted and the job dropped, not retried.  Transport
   failures reconnect and retransmit every unacked request with its
   original (cid, cseq) stamp — server dedupe makes that at-most-once. *)

let open_loop cfg ~hist ~cid ~t0 ~rate (jobs : Core.Job.t array) =
  let njobs = Array.length jobs in
  let submitted = ref 0 in
  let accepted = ref 0 in
  let rejected = ref 0 in
  let backpressured = ref 0 in
  let errors = ref 0 in
  let reconnects = ref 0 in
  let retries = ref 0 in
  let gave_up = ref 0 in
  (* oldest first; responses arrive in per-connection request order *)
  let pending : (string * float) Queue.t = Queue.create () in
  let rbuf = Buffer.create 4096 in
  let timeout = if cfg.timeout_s > 0. then cfg.timeout_s else 5.0 in
  let connect () =
    let rec attempt n =
      let fd = Unix.socket (Addr.domain cfg.addr) Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Addr.to_sockaddr cfg.addr) with
      | () ->
          (match cfg.addr with
          | Addr.Tcp _ -> (
              try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
          | Addr.Unix_sock _ -> ());
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
          Some fd
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if n >= cfg.policy.Retry.max_attempts then None
          else begin
            Unix.sleepf (cfg.policy.Retry.base_delay_ms /. 1000.);
            attempt (n + 1)
          end
    in
    attempt 1
  in
  let write_all fd line =
    let b = Bytes.unsafe_of_string line in
    let n = String.length line in
    let rec go off =
      if off < n then
        let w = Unix.write fd b off (n - off) in
        if w = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
        else go (off + w)
    in
    go 0
  in
  (* On any transport failure: fresh socket, retransmit the window. *)
  let rec reestablish () =
    Buffer.clear rbuf;
    incr reconnects;
    match connect () with
    | None ->
        gave_up := !gave_up + Queue.length pending + (njobs - !submitted);
        Queue.clear pending;
        None
    | Some fd -> (
        retries := !retries + Queue.length pending;
        match Queue.iter (fun (line, _) -> write_all fd line) pending with
        | () -> Some fd
        | exception Unix.Unix_error _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            reestablish ())
  in
  let pace () =
    if rate > 0. then begin
      let due = t0 +. (float_of_int !submitted /. rate) in
      let slack = due -. Unix.gettimeofday () in
      if slack > 0. then Unix.sleepf slack
    end
  in
  let handle_response line =
    match Queue.take_opt pending with
    | None -> incr errors  (* response with nothing in flight *)
    | Some (_, sent_at) -> (
        Obs.Metrics.observe hist
          ((Unix.gettimeofday () -. sent_at) *. 1e6);
        match Protocol.response_of_line line with
        | Ok (Protocol.Submit_ok _) -> incr accepted
        | Ok (Protocol.Error { code = Protocol.Backpressure; _ }) ->
            incr backpressured
        | Ok _ -> incr rejected
        | Error _ -> incr errors)
  in
  (* Split off complete lines; feed each to handle_response. *)
  let consume data n =
    Buffer.add_subbytes rbuf data 0 n;
    let s = Buffer.contents rbuf in
    let len = String.length s in
    let pos = ref 0 in
    (try
       while true do
         let i = String.index_from s !pos '\n' in
         handle_response (String.sub s !pos (i - !pos));
         pos := i + 1
       done
     with Not_found -> ());
    Buffer.clear rbuf;
    Buffer.add_substring rbuf s !pos (len - !pos)
  in
  let chunk = Bytes.create 65536 in
  let rec loop fd =
    if !submitted >= njobs && Queue.is_empty pending then
      (try Unix.close fd with Unix.Unix_error _ -> ())
    else begin
      (* fill the window *)
      let sent_error = ref false in
      while
        (not !sent_error)
        && !submitted < njobs
        && Queue.length pending < cfg.window
      do
        pace ();
        let j = jobs.(!submitted) in
        incr submitted;
        let line =
          (* same trace-id scheme as Client.Resilient.stamp: the open
             loop bypasses the resilient client, so it stamps its own *)
          let trace = (cid lsl 20) lor (!submitted land 0xFFFFF) in
          Protocol.request_to_line
            (submit_of_job ~cid ~cseq:!submitted ~trace j)
        in
        Queue.push (line, Unix.gettimeofday ()) pending;
        match write_all fd line with
        | () -> ()
        | exception Unix.Unix_error _ -> sent_error := true
      done;
      if !sent_error then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match reestablish () with None -> () | Some fd' -> loop fd'
      end
      else
        (* read one chunk of acks *)
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            (* server closed; if work remains this is a failure *)
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if !submitted < njobs || not (Queue.is_empty pending) then (
              match reestablish () with None -> () | Some fd' -> loop fd')
        | n ->
            consume chunk n;
            loop fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop fd
        | exception Unix.Unix_error _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            (match reestablish () with None -> () | Some fd' -> loop fd')
    end
  in
  (match connect () with
  | None -> gave_up := njobs
  | Some fd -> loop fd);
  {
    a_submitted = !submitted;
    a_accepted = !accepted;
    a_rejected = !rejected;
    a_backpressured = !backpressured;
    a_retries = !retries;
    a_reconnects = !reconnects;
    a_gave_up = !gave_up;
    a_errors = !errors;
  }

let run cfg =
  let horizon = cfg.spec.Workload.Scenario.horizon in
  let jobs =
    Workload.Scenario.submission_stream cfg.spec ~seed:cfg.seed
    |> Seq.take_while (fun (j : Core.Job.t) -> j.Core.Job.release < horizon)
    |> Seq.take cfg.count
    |> List.of_seq
  in
  let total = List.length jobs in
  if total = 0 then Error "empty submission stream"
  else begin
    let nconn = max 1 cfg.connections in
    let groups = max 1 cfg.groups in
    let norgs = cfg.spec.Workload.Scenario.norgs in
    (* Jobs are assigned whole org-groups (group g -> connection
       g mod N): the admission frontier is monotone per group, so
       interleaving one group's stream over two sockets would race the
       releases and shower the slower socket with Bad_release rejects.
       This mirrors the server's partition when [groups] matches its
       [--groups]. *)
    let per_conn = Array.make nconn [] in
    List.iter
      (fun (j : Core.Job.t) ->
        let c = group_of_org ~norgs ~groups j.Core.Job.org mod nconn in
        per_conn.(c) <- j :: per_conn.(c))
      jobs;
    let per_conn = Array.map (fun l -> Array.of_list (List.rev l)) per_conn in
    Obs.Metrics.set_enabled true;
    let hist = Obs.Metrics.histogram "loadgen.ack_latency_us" in
    (* The retry jitter stream must not perturb the workload: the job
       stream consumes [seed] directly, the clients a derived stream. *)
    let rngs =
      Array.init nconn (fun c ->
          Fstats.Rng.split (Fstats.Rng.create ~seed:(cfg.seed + (7919 * c))))
    in
    let t0 = Unix.gettimeofday () in
    let run_conn c =
      let jobs_c = per_conn.(c) in
      let rate_c =
        if cfg.rate > 0. then
          cfg.rate *. float_of_int (Array.length jobs_c) /. float_of_int total
        else 0.
      in
      if cfg.window <= 1 then
        closed_loop cfg ~hist ~rng:rngs.(c) ~t0 ~rate:rate_c jobs_c
      else
        let cid = 1 + ((cfg.seed * 65599) + c) land 0xFFFFFF in
        open_loop cfg ~hist ~cid ~t0 ~rate:rate_c jobs_c
    in
    let agg =
      if nconn = 1 then run_conn 0
      else
        Array.init nconn (fun c -> Domain.spawn (fun () -> run_conn c))
        |> Array.map Domain.join
        |> Array.fold_left sum_agg zero_agg
    in
    let wall_seconds = Unix.gettimeofday () -. t0 in
    (* Status and drain from a fresh control connection after the load
       connections settle. *)
    let rng = Fstats.Rng.split (Fstats.Rng.create ~seed:(cfg.seed + 1)) in
    let ctl =
      Client.Resilient.create ~policy:cfg.policy ~timeout_s:cfg.timeout_s ~rng
        cfg.addr
    in
    Fun.protect
      ~finally:(fun () -> Client.Resilient.close ctl)
      (fun () ->
        let errors = ref agg.a_errors in
        let job_wait, server_shed =
          match Client.Resilient.call ctl Protocol.Status with
          | Ok (Protocol.Status_ok st) ->
              (st.Protocol.job_wait, Some st.Protocol.shed)
          | Ok _ | Error _ -> (None, None)
        in
        if cfg.drain then (
          match Client.Resilient.call ctl (Protocol.Drain { detail = false }) with
          | Ok _ -> ()
          | Error _ -> incr errors);
        let ack_latency =
          Option.value
            (find_histogram "loadgen.ack_latency_us")
            ~default:empty_summary
        in
        Ok
          {
            submitted = agg.a_submitted;
            accepted = agg.a_accepted;
            rejected = agg.a_rejected;
            backpressured = agg.a_backpressured;
            retries = agg.a_retries;
            reconnects = agg.a_reconnects;
            gave_up = agg.a_gave_up;
            errors = !errors;
            server_shed;
            wall_seconds;
            achieved_rate =
              (if wall_seconds > 0. then
                 float_of_int agg.a_accepted /. wall_seconds
               else 0.);
            ack_latency;
            job_wait;
          })
  end

let summary_json (s : Obs.Metrics.summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int s.Obs.Metrics.count);
      ("p50", Obs.Json.Float s.Obs.Metrics.p50);
      ("p90", Obs.Json.Float s.Obs.Metrics.p90);
      ("p99", Obs.Json.Float s.Obs.Metrics.p99);
      ("max", Obs.Json.Float s.Obs.Metrics.max);
    ]

let report_to_json r =
  let open Obs.Json in
  Obj
    (List.concat
       [
         [
           ("submitted", Int r.submitted);
           ("accepted", Int r.accepted);
           ("rejected", Int r.rejected);
           ("backpressured", Int r.backpressured);
           ("retries", Int r.retries);
           ("reconnects", Int r.reconnects);
           ("gave_up", Int r.gave_up);
           ("errors", Int r.errors);
         ];
         (match r.server_shed with
         | None -> []
         | Some n -> [ ("server_shed", Int n) ]);
         [
           ("wall_seconds", Float r.wall_seconds);
           ("achieved_rate", Float r.achieved_rate);
           ("ack_latency_us", summary_json r.ack_latency);
         ];
         (match r.job_wait with
         | None -> []
         | Some s -> [ ("job_wait", summary_json s) ]);
       ])

let pp_summary ppf (s : Obs.Metrics.summary) =
  Format.fprintf ppf "p50 %.0f  p90 %.0f  p99 %.0f  max %.0f (n=%d)"
    s.Obs.Metrics.p50 s.Obs.Metrics.p90 s.Obs.Metrics.p99 s.Obs.Metrics.max
    s.Obs.Metrics.count

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>submitted %d  accepted %d  rejected %d  backpressured %d  errors %d@,\
     retries %d  reconnects %d  gave up %d%s@,\
     wall %.2fs  rate %.0f/s@,\
     ack latency (us): %a@]"
    r.submitted r.accepted r.rejected r.backpressured r.errors r.retries
    r.reconnects r.gave_up
    (match r.server_shed with
    | None -> ""
    | Some n -> Printf.sprintf "  server shed %d" n)
    r.wall_seconds r.achieved_rate pp_summary r.ack_latency;
  match r.job_wait with
  | None -> ()
  | Some s ->
      Format.fprintf ppf "@,@[job wait (sim time): %a@]" pp_summary s
