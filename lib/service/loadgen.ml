type config = {
  addr : Addr.t;
  spec : Workload.Scenario.spec;
  seed : int;
  rate : float;
  count : int;
  drain : bool;
}

type report = {
  submitted : int;
  accepted : int;
  rejected : int;
  backpressured : int;
  errors : int;
  wall_seconds : float;
  achieved_rate : float;
  ack_latency : Obs.Metrics.summary;
  job_wait : Obs.Metrics.summary option;
}

let empty_summary =
  { Obs.Metrics.count = 0; p50 = 0.; p90 = 0.; p99 = 0.; max = 0. }

let find_histogram name =
  List.find_map
    (function
      | n, Obs.Metrics.Histogram s when n = name -> Some s | _ -> None)
    (Obs.Metrics.snapshot ())

let run cfg =
  let ( let* ) = Result.bind in
  let horizon = cfg.spec.Workload.Scenario.horizon in
  let jobs =
    Workload.Scenario.submission_stream cfg.spec ~seed:cfg.seed
    |> Seq.take_while (fun (j : Core.Job.t) -> j.Core.Job.release < horizon)
    |> Seq.take cfg.count
  in
  let* client = Client.connect cfg.addr in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      Obs.Metrics.set_enabled true;
      let hist = Obs.Metrics.histogram "loadgen.ack_latency_us" in
      let submitted = ref 0 in
      let accepted = ref 0 in
      let rejected = ref 0 in
      let backpressured = ref 0 in
      let errors = ref 0 in
      let t0 = Unix.gettimeofday () in
      let pace () =
        if cfg.rate > 0. then begin
          let due = t0 +. (float_of_int !submitted /. cfg.rate) in
          let slack = due -. Unix.gettimeofday () in
          if slack > 0. then Unix.sleepf slack
        end
      in
      (* Retry a backpressured submission until the daemon has room —
         that is the throttling contract: the queue bound turns overload
         into client-side waiting, not loss. *)
      let rec send req =
        let sent_at = Obs.Clock.now_ns () in
        match Client.request client req with
        | Error msg ->
            incr errors;
            Some msg
        | Ok resp -> (
            Obs.Metrics.observe hist (Obs.Clock.elapsed sent_at *. 1e6);
            match resp with
            | Protocol.Submit_ok _ ->
                incr accepted;
                None
            | Protocol.Error { code = Protocol.Backpressure; _ } ->
                incr backpressured;
                Unix.sleepf 0.002;
                send req
            | Protocol.Error _ ->
                incr rejected;
                None
            | _ ->
                incr rejected;
                None)
      in
      let transport_error = ref None in
      Seq.iter
        (fun (j : Core.Job.t) ->
          if !transport_error = None then begin
            pace ();
            incr submitted;
            let req =
              Protocol.Submit
                {
                  org = j.Core.Job.org;
                  user = j.Core.Job.user;
                  release = j.Core.Job.release;
                  size = j.Core.Job.size;
                }
            in
            transport_error := send req
          end)
        jobs;
      let wall_seconds = Unix.gettimeofday () -. t0 in
      let job_wait =
        if !transport_error <> None then None
        else
          match Client.request client Protocol.Status with
          | Ok (Protocol.Status_ok st) -> st.Protocol.job_wait
          | Ok _ | Error _ -> None
      in
      if cfg.drain && !transport_error = None then
        (match Client.request client (Protocol.Drain { detail = false }) with
        | Ok _ -> ()
        | Error _ -> incr errors);
      let ack_latency =
        Option.value (find_histogram "loadgen.ack_latency_us")
          ~default:empty_summary
      in
      Ok
        {
          submitted = !submitted;
          accepted = !accepted;
          rejected = !rejected;
          backpressured = !backpressured;
          errors = !errors;
          wall_seconds;
          achieved_rate =
            (if wall_seconds > 0. then float_of_int !accepted /. wall_seconds
             else 0.);
          ack_latency;
          job_wait;
        })

let summary_json (s : Obs.Metrics.summary) =
  Obs.Json.Obj
    [
      ("count", Obs.Json.Int s.Obs.Metrics.count);
      ("p50", Obs.Json.Float s.Obs.Metrics.p50);
      ("p90", Obs.Json.Float s.Obs.Metrics.p90);
      ("p99", Obs.Json.Float s.Obs.Metrics.p99);
      ("max", Obs.Json.Float s.Obs.Metrics.max);
    ]

let report_to_json r =
  let open Obs.Json in
  Obj
    (List.concat
       [
         [
           ("submitted", Int r.submitted);
           ("accepted", Int r.accepted);
           ("rejected", Int r.rejected);
           ("backpressured", Int r.backpressured);
           ("errors", Int r.errors);
           ("wall_seconds", Float r.wall_seconds);
           ("achieved_rate", Float r.achieved_rate);
           ("ack_latency_us", summary_json r.ack_latency);
         ];
         (match r.job_wait with
         | None -> []
         | Some s -> [ ("job_wait", summary_json s) ]);
       ])

let pp_summary ppf (s : Obs.Metrics.summary) =
  Format.fprintf ppf "p50 %.0f  p90 %.0f  p99 %.0f  max %.0f (n=%d)"
    s.Obs.Metrics.p50 s.Obs.Metrics.p90 s.Obs.Metrics.p99 s.Obs.Metrics.max
    s.Obs.Metrics.count

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>submitted %d  accepted %d  rejected %d  backpressured %d  errors %d@,\
     wall %.2fs  rate %.0f/s@,\
     ack latency (us): %a@]"
    r.submitted r.accepted r.rejected r.backpressured r.errors r.wall_seconds
    r.achieved_rate pp_summary r.ack_latency;
  match r.job_wait with
  | None -> ()
  | Some s ->
      Format.fprintf ppf "@,@[job wait (sim time): %a@]" pp_summary s
