(** The serving configuration: everything that determines a daemon's
    behaviour given its input stream.

    A batch run is determined by its {!Core.Instance.t} plus the policy and
    seed; an online daemon does not know its jobs up front, so its identity
    is the remainder — cluster shape, horizon, algorithm, seed, restart
    budget.  The config is written into the WAL header and every snapshot:
    crash recovery replays the logged submissions into a daemon rebuilt
    from this record, and kernel determinism does the rest (DESIGN.md §12).
    [workers] deliberately stays out of the durable identity checks'
    semantics: results are bit-identical for every worker count. *)

type t = {
  machines : int array;  (** per-organization machine endowment *)
  speeds : float array option;  (** related machines, flattened order *)
  horizon : int;  (** evaluation end; submissions must be released before *)
  algorithm : string;  (** registry name, e.g. ["ref"], ["fairshare"] *)
  seed : int;  (** RNG seed handed to the policy maker *)
  max_restarts : int option;  (** kill budget under faults *)
  workers : int option;  (** worker domains for parallel-capable policies *)
  groups : int;
      (** org-groups: the number of independent scheduling domains the
          organizations are partitioned into ({!Partition}).  Each group
          owns a contiguous block of orgs (and their machines), its own
          session, and its own WAL segment.  Part of the durable identity:
          the partition determines ψsp, so a resumed daemon must keep it.
          [1] (the default) is the unsharded daemon. *)
  federated : bool;
      (** the daemon accepts [endow] feeds: its sessions are constructed in
          federated mode ({!Federation.Mode}), so estimator policies build
          live sub-coalition simulators that follow the ownership stream.
          Part of the durable identity — recovery must rebuild sessions the
          same way to replay logged [Endow] records bit-identically. *)
}

val make :
  ?speeds:float array ->
  ?max_restarts:int ->
  ?workers:int ->
  ?groups:int ->
  ?federated:bool ->
  machines:int array ->
  horizon:int ->
  algorithm:string ->
  seed:int ->
  unit ->
  (t, string) result
(** Validates what {!Core.Instance.make} and {!Algorithms.Registry.find}
    would reject later: at least one machine, positive horizon, known
    algorithm, non-negative restart budget, positive workers, speeds length
    matching the machine count, [1 <= groups <= organizations] with at
    least one machine per org-group. *)

val organizations : t -> int
val total_machines : t -> int

val empty_instance : t -> Core.Instance.t
(** The job-less instance a fresh session starts from. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}, re-running the {!make} validation. *)

val equal : t -> t -> bool
(** Structural equality of the durable identity — [workers] excluded: a
    resumed daemon may use a different worker count without breaking
    bit-identity. *)

val pp : Format.formatter -> t -> unit
