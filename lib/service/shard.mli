(** One org-group's scheduling domain.

    The sharded daemon (DESIGN.md §15) splits the service along the
    {e semantic} partition — {!Partition}'s contiguous org-groups — and
    gives each group everything the pre-sharding server owned except the
    sockets: its own {!Online.t} engine over the group's induced
    sub-config, its own WAL segment, dedupe table, overload detector,
    and group-commit buffer.  The router (Server) owns connections,
    parses lines, and routes each feed to its org's group; a {!worker}
    executes one or more groups, either on its own domain or inline on
    the router thread when the daemon is single-shard.

    Communication is two mailboxes: router → worker {!msg}s (tagged with
    the destination group), worker → router {!completion}s.  Tokens
    ([tok]) are opaque to the shard — the router uses them to find the
    connection/slot (feeds) or the gather (control queries) a completion
    belongs to.

    {b Group commit.}  Acks of accepted feeds are {e held} until one
    [fsync] covers the whole batch.  [commit_interval = 0] syncs every
    pump (the pre-sharding behaviour: one fsync per select round); a
    positive interval lets appends accumulate until the oldest held ack
    is [commit_interval] seconds old or [commit_max] acks are held,
    amortizing the fsync.  Durability is unchanged: no ack leaves the
    shard before the fsync (or snapshot) covering its record succeeds,
    so every acked submission still survives [kill -9]. *)

(** A mutex-protected queue with a pipe for readiness, so the consumer
    can [select] with a timeout (group-commit deadlines).  SPSC in the
    daemon, safe for any number of producers. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val drain : 'a t -> 'a list
  (** Everything queued, FIFO; empties the wake pipe. *)

  val is_empty : 'a t -> bool

  val wait_fd : 'a t -> Unix.file_descr
  (** Readable when a push happened since the last {!drain}; pass to
      [Unix.select]. *)

  val close : 'a t -> unit
end

(** {2 Messages — router to shard} *)

type query =
  | Q_status
  | Q_psi
  | Q_snapshot
  | Q_drain of { detail : bool }

type 'tok msg =
  | Feed of { tok : 'tok; req : Protocol.request; t_enq : float }
      (** a [Submit]/[Fault]/[Endow] already range-validated and admitted
          by the router; [t_enq] is its enqueue wall-clock time *)
  | Query of { tok : 'tok; q : query }
  | Tick  (** wake only — commit deadlines, stop checks *)

(** {2 Completions — shard to router}

    Control responses come back as per-group {e parts}; the router
    gathers one from every group and merges (max of clocks, sum of
    counters, scatter of per-org arrays — see Server). *)

type status_part = {
  st_now : int;
  st_frontier : int;
  st_accepted : int;
  st_rejected : int;
  st_waiting : int array;  (** local org indexing *)
  st_stats : Kernel.Stats.t;
  st_estimator : string;
  st_degraded : bool;
  st_ewma : float;
  st_fsyncs : int;
}

type psi_part = { ps_now : int; ps_psi : int array; ps_parts : int array }

type drain_part = {
  dr_now : int;
  dr_psi : int array;
  dr_parts : int array;
  dr_stats : Kernel.Stats.t;
  dr_schedule : (int * int * int * int * int) list option;
      (** rows already translated to global org/machine ids *)
}

type part =
  | P_status of status_part
  | P_psi of psi_part
  | P_snapshot of (int * string, string) result
      (** [(last_seq, path)] on success *)
  | P_drain of drain_part

type 'tok completion =
  | Ack of { tok : 'tok; resp : Protocol.response }
  | Part of { tok : 'tok; group : int; part : part }

(** {2 Shards} *)

type 'tok t

val create :
  partition:Partition.t ->
  group:int ->
  state_dir:string option ->
  overload:Overload.config ->
  degrade_to:string option ->
  snapshot_every:int ->
  commit_interval:float ->
  commit_max:int ->
  unit ->
  ('tok t, string) result
(** Recover the group's segment ([state_dir] is {e this segment's}
    directory — the flat state dir when unsharded, [wal-<g>/] otherwise),
    verify its stored config equals the partition's, replay into a fresh
    engine under the final estimator, rebuild the dedupe cache, compact
    on boot, and open a fresh site-prefixed WAL. *)

val group : _ t -> int
val sub_config : _ t -> Config.t
val fsyncs : _ t -> int
val accepted : _ t -> int

val depth : _ t -> int
(** Feeds admitted but not yet processed (router increments via
    {!depth_incr} at routing, the worker decrements at engine feed) —
    the sharded equivalent of the old admission-queue occupancy. *)

val depth_incr : _ t -> unit

val published_overloaded : _ t -> bool
(** The shard's overload level, published after every pump; the router
    sheds on it without crossing the domain boundary. *)

val published_retry_ms : _ t -> int

val close : _ t -> unit

(** {2 Workers — execution of one or more shards} *)

type 'tok worker

val make_worker :
  id:int ->
  shards:(int * 'tok t) list ->
  drain_batch:int ->
  cap:int ->
  post:('tok completion -> unit) ->
  'tok worker
(** [shards] maps group id to shard, ascending; [cap] is the per-group
    admission bound (occupancy denominator); [post] delivers completions
    (called from the worker's domain). *)

val post_msg : 'tok worker -> group:int -> 'tok msg -> unit

val pump : 'tok worker -> unit
(** One processing round: drain the mailbox, feed at most [drain_batch]
    engine entries (control queries ride free, as before), run the
    group-commit policy, compact if due, re-evaluate overload.  Called
    in a loop by {!start_worker}'s domain — or directly by the router
    when the daemon runs single-shard, preserving the pre-sharding
    single-threaded execution exactly. *)

val wait_timeout : 'tok worker -> float
(** Seconds the worker may sleep: 0 when work is backlogged, else the
    nearest commit deadline, else a 1 s idle tick (overload recovery is
    observed calm). *)

val start_worker : 'tok worker -> unit
(** Spawn the worker's domain running [select]+{!pump}. *)

val stop_worker : 'tok worker -> unit
(** Stop and join the domain (if any), close mailbox and shard WALs. *)
