(** The org-group partition: how a sharded daemon splits one
    {!Config.t} into independent scheduling domains (DESIGN.md §15).

    Pooled scheduling couples organizations — any org's job may run on
    any machine — so the unit of sharding cannot be an arbitrary subset
    of the request stream; it must be a {e semantic} partition under
    which the coupled state decomposes.  Org-groups are that unit
    (ground: federated-cloud consortia, PAPERS.md): group [g] owns the
    contiguous org block [g*k/G, (g+1)*k/G) and exactly the machines
    those orgs endow, runs its own {!Online.t} over the induced
    sub-config, and logs to its own WAL segment.  ψsp within a group is
    by construction identical to a daemon serving only that group; the
    sharded daemon's ψsp vector is the concatenation.

    The partition is a pure function of the durable config ([machines],
    [groups]) — no state of its own — so replay after a crash and a
    differently-threaded run ([--shards]) always agree on who owns
    what. *)

type t

val make : Config.t -> t
(** Derives the block boundaries.  The config's own validation already
    guarantees every group is non-empty with at least one machine. *)

val groups : t -> int
val config : t -> Config.t

val group_of_org : t -> int -> int
(** Owning group of a global org id (caller checks range). *)

val group_of_machine : t -> int -> int
(** Owning group of a global machine id. *)

val org_range : t -> int -> int * int
(** [(lo, hi)] global org ids of a group, half-open. *)

val machine_range : t -> int -> int * int
(** [(lo, hi)] global machine ids of a group, half-open. *)

val local_org : t -> int -> int
(** Global org id to the owning group's local org index. *)

val local_machine : t -> int -> int

val global_org : t -> group:int -> int -> int
(** Local org index of [group] back to the global id. *)

val global_machine : t -> group:int -> int -> int

val sub_config : t -> int -> Config.t
(** The induced single-group config of group [g]: its machine block
    (and speed slice), same horizon/algorithm/seed/restart budget,
    [groups = 1].  The sub-config drives each shard's engine; segment
    WAL headers store the {e global} config so any segment alone
    identifies the whole partition. *)

val scatter_int : t -> (int -> int array) -> int array
(** Assemble a global per-org int array from per-group local arrays:
    [scatter_int p f] places [f g] (length = group [g]'s org count) at
    the group's block offset. *)

val scatter_float : t -> (int -> float array) -> float array
