(* The daemon's router.  It owns the listening socket and every
   connection, parses request lines, and routes each feed to the shard
   owning its org-group; control requests are broadcast to all groups
   and their per-group parts merged back into one response.  Engine
   work, WAL appends, group commit, dedupe, and overload detection all
   live in Shard — one per org-group, executed by 1..shards worker
   domains (inline on this thread when single-shard, preserving the
   pre-sharding single-threaded daemon exactly).  DESIGN.md §15. *)

type config = {
  addr : Addr.t;
  service : Config.t;
  state_dir : string option;
  queue_cap : int;
  snapshot_every : int;
  drain_batch : int;
  degrade_to : string option;
  overload : Overload.config;
  shards : int;
  commit_interval : float;
}

let make_config ?state_dir ?(queue_cap = 1024) ?(snapshot_every = 4096)
    ?(drain_batch = 256) ?degrade_to ?(overload = Overload.default)
    ?(shards = 1) ?(commit_interval = 0.0) ~addr ~service () =
  {
    addr;
    service;
    state_dir;
    queue_cap;
    snapshot_every;
    drain_batch;
    degrade_to;
    overload;
    shards;
    commit_interval;
  }

let m_shed = Obs.Metrics.counter "service.shed"

(* Per-connection responses must come back in request order even though
   different shards answer at different speeds, so every request gets a
   slot and completions park in [pending] until their turn. *)
type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  out : Buffer.t;
  mutable eof : bool;
  mutable closed : bool;
  mutable next_slot : int;  (* next slot to assign *)
  mutable next_emit : int;  (* next slot to write out *)
  pending : (int, Protocol.response) Hashtbl.t;  (* done out of order *)
}

(* One broadcast control request: a part expected from every group. *)
type gather = {
  g_conn : conn option;  (* None: SIGTERM-driven drain, nobody to answer *)
  g_slot : int;
  g_kind : [ `Status | `Psi | `Snapshot | `Drain ];
  g_parts : Shard.part option array;
  mutable g_waiting : int;
}

type tok = Feed_tok of conn * int | Gather_tok of gather

type state = {
  cfg : config;
  base : Config.t;
      (* the durable identity: what WAL headers and snapshots carry.
         A shard's engine config may differ in [algorithm] while
         degraded. *)
  part : Partition.t;
  sh : tok Shard.t array;  (* by group *)
  workers : tok Shard.worker array;
  worker_of : int array;  (* group -> index into [workers] *)
  threaded : bool;
  comp : tok Shard.completion Shard.Mailbox.t;
  cap_g : int;  (* per-group admission bound *)
  mutable conns : conn list;
  mutable router_rejected : int;  (* parse/range/shed rejects *)
  mutable shed : int;
  mutable draining : bool;
  mutable shutdown : bool;
  mutable pending_gathers : int;
}

let term_requested = ref false

let emit conn resp =
  if not conn.closed then
    Buffer.add_string conn.out (Protocol.response_to_line resp)

let is_feed = function
  | Protocol.Submit _ | Protocol.Fault _ | Protocol.Endow _ -> true
  | Protocol.Status | Protocol.Psi | Protocol.Snapshot | Protocol.Drain _
  | Protocol.Metrics | Protocol.Trace _ ->
      false

let take_slot conn =
  let s = conn.next_slot in
  conn.next_slot <- s + 1;
  s

let deliver conn slot resp =
  if not conn.closed then begin
    if slot = conn.next_emit then begin
      emit conn resp;
      conn.next_emit <- conn.next_emit + 1;
      let rec flush () =
        match Hashtbl.find_opt conn.pending conn.next_emit with
        | Some r ->
            Hashtbl.remove conn.pending conn.next_emit;
            emit conn r;
            conn.next_emit <- conn.next_emit + 1;
            flush ()
        | None -> ()
      in
      flush ()
    end
    else Hashtbl.replace conn.pending slot resp
  end

let job_wait_summary () =
  if not (Obs.Metrics.enabled ()) then None
  else
    List.find_map
      (function
        | "sim.job_wait", Obs.Metrics.Histogram s -> Some s | _ -> None)
      (Obs.Metrics.snapshot ())

(* --- Merging per-group parts --------------------------------------------
   Clocks (now/frontier) merge by max: every group advanced at least to
   its own value, and the org-group partition makes their event streams
   independent.  Counters sum; per-org arrays scatter back into global
   org indexing by the partition's block offsets. *)

let merge_status s (parts : Shard.status_part array) =
  let open Shard in
  let sum f = Array.fold_left (fun a p -> a + f p) 0 parts in
  let fmax f = Array.fold_left (fun a p -> Float.max a (f p)) 0.0 parts in
  let imax f = Array.fold_left (fun a p -> max a (f p)) 0 parts in
  let estimator =
    let e0 = parts.(0).st_estimator in
    if Array.for_all (fun p -> p.st_estimator = e0) parts then e0 else "mixed"
  in
  {
    Protocol.now = imax (fun p -> p.st_now);
    frontier = imax (fun p -> p.st_frontier);
    horizon = s.base.Config.horizon;
    orgs = Config.organizations s.base;
    machines = Config.total_machines s.base;
    accepted = sum (fun p -> p.st_accepted);
    rejected = s.router_rejected + sum (fun p -> p.st_rejected);
    queue_depth = Array.fold_left (fun a sh -> a + Shard.depth sh) 0 s.sh;
    queue_cap = s.cfg.queue_cap;
    draining = s.draining;
    waiting = Partition.scatter_int s.part (fun g -> parts.(g).st_waiting);
    stats =
      Kernel.Stats.total
        (Array.to_list (Array.map (fun p -> p.st_stats) parts));
    job_wait = job_wait_summary ();
    estimator;
    degraded = Array.exists (fun p -> p.st_degraded) parts;
    shed = s.shed;
    ack_ewma_ms = fmax (fun p -> p.st_ewma);
    groups = Partition.groups s.part;
    shards = Array.length s.workers;
    fsyncs = sum (fun p -> p.st_fsyncs);
  }

let merge_psi s (parts : Shard.psi_part array) =
  Protocol.Psi_ok
    {
      now = Array.fold_left (fun a p -> max a p.Shard.ps_now) 0 parts;
      psi_scaled =
        Partition.scatter_int s.part (fun g -> parts.(g).Shard.ps_psi);
      parts = Partition.scatter_int s.part (fun g -> parts.(g).Shard.ps_parts);
    }

let merge_snapshot s (parts : (int * string, string) result array) =
  let err =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with
        | (Some _ as e), _ -> e
        | None, Error e -> Some e
        | None, Ok _ -> None)
      None parts
  in
  match err with
  | Some msg ->
      Protocol.Error { code = Protocol.Wal_error; msg; retry_after_ms = None }
  | None ->
      let seq =
        Array.fold_left
          (fun a r -> match r with Ok (sq, _) -> max a sq | Error _ -> a)
          0 parts
      in
      let path =
        if Partition.groups s.part = 1 then
          match parts.(0) with Ok (_, p) -> p | Error _ -> assert false
        else Option.value ~default:"" s.cfg.state_dir
      in
      Protocol.Snapshot_ok { seq; path }

let merge_drain s (parts : Shard.drain_part array) =
  let open Shard in
  let detail = Array.exists (fun p -> p.dr_schedule <> None) parts in
  Protocol.Drain_ok
    {
      Protocol.d_now = Array.fold_left (fun a p -> max a p.dr_now) 0 parts;
      d_psi_scaled = Partition.scatter_int s.part (fun g -> parts.(g).dr_psi);
      d_parts = Partition.scatter_int s.part (fun g -> parts.(g).dr_parts);
      d_stats =
        Kernel.Stats.total
          (Array.to_list (Array.map (fun p -> p.dr_stats) parts));
      d_schedule =
        (if detail then
           Some
             (List.concat_map
                (fun p -> Option.value ~default:[] p.dr_schedule)
                (Array.to_list parts))
         else None);
    }

let finish_gather s g =
  s.pending_gathers <- s.pending_gathers - 1;
  let all extract =
    Array.map
      (fun p -> match p with Some x -> extract x | None -> assert false)
      g.g_parts
  in
  let resp =
    match g.g_kind with
    | `Status ->
        Protocol.Status_ok
          (merge_status s
             (all (function Shard.P_status p -> p | _ -> assert false)))
    | `Psi ->
        merge_psi s (all (function Shard.P_psi p -> p | _ -> assert false))
    | `Snapshot ->
        merge_snapshot s
          (all (function Shard.P_snapshot r -> r | _ -> assert false))
    | `Drain ->
        merge_drain s (all (function Shard.P_drain p -> p | _ -> assert false))
  in
  (match g.g_conn with Some c -> deliver c g.g_slot resp | None -> ());
  if g.g_kind = `Drain then s.shutdown <- true

let start_gather s ~conn ~slot kind q =
  let groups = Partition.groups s.part in
  let g =
    {
      g_conn = conn;
      g_slot = slot;
      g_kind = kind;
      g_parts = Array.make groups None;
      g_waiting = groups;
    }
  in
  s.pending_gathers <- s.pending_gathers + 1;
  let tok = Gather_tok g in
  for grp = 0 to groups - 1 do
    Shard.post_msg s.workers.(s.worker_of.(grp)) ~group:grp
      (Shard.Query { tok; q })
  done

(* --- Routing ------------------------------------------------------------- *)

let route_feed s conn slot req ~now =
  let reject code msg retry_after_ms =
    s.router_rejected <- s.router_rejected + 1;
    deliver conn slot (Protocol.Error { code; msg; retry_after_ms })
  in
  let norgs = Config.organizations s.base in
  let machines = Config.total_machines s.base in
  (* Range checks the shards cannot do: routing needs a valid global id
     before a group can be chosen.  Error texts match the engine's. *)
  let target =
    match req with
    | Protocol.Submit { org; _ } ->
        if org < 0 || org >= norgs then
          Error (Online.error_to_string (Online.Bad_org { org; norgs }))
        else Ok (Partition.group_of_org s.part org)
    | Protocol.Fault { event; _ } ->
        let m = Faults.Event.machine event in
        if m < 0 || m >= machines then
          Error
            (Online.error_to_string
               (Online.Bad_machine { machine = m; machines }))
        else Ok (Partition.group_of_machine s.part m)
    | Protocol.Endow { event; _ } -> (
        (* Every org and machine the event names must live in one group:
           the group's engine owns them, and a cross-group transfer would
           need the shards to share ownership state.  The partition is
           org-contiguous, so a consortium whose lending crosses groups
           should be served with fewer groups. *)
        let named_orgs =
          Federation.Event.org event
          ::
          (match event with
          | Federation.Event.Lend { to_org; _ } -> [ to_org ]
          | _ -> [])
        in
        let named_machines = Federation.Event.machines event in
        match
          ( List.find_opt (fun o -> o < 0 || o >= norgs) named_orgs,
            List.find_opt (fun m -> m < 0 || m >= machines) named_machines )
        with
        | Some org, _ ->
            Error (Online.error_to_string (Online.Bad_org { org; norgs }))
        | None, Some m ->
            Error
              (Online.error_to_string
                 (Online.Bad_machine { machine = m; machines }))
        | None, None ->
            let grp = Partition.group_of_org s.part (List.hd named_orgs) in
            if
              List.for_all
                (fun o -> Partition.group_of_org s.part o = grp)
                named_orgs
              && List.for_all
                   (fun m -> Partition.group_of_machine s.part m = grp)
                   named_machines
            then Ok grp
            else
              Error
                "endowment event spans multiple org-groups (members of a \
                 lending consortium must share one group)")
    | Protocol.Status | Protocol.Psi | Protocol.Snapshot | Protocol.Drain _
    | Protocol.Metrics | Protocol.Trace _ ->
        assert false
  in
  match target with
  | Error msg -> reject Protocol.Bad_request msg None
  | Ok grp ->
      let sh = s.sh.(grp) in
      let depth = Shard.depth sh in
      let full = depth >= s.cap_g in
      (* Under sustained overload, shed before the hard cap: refusing
         cheaply at half occupancy keeps ack latency bounded for the
         feeds already admitted.  Per-group, so one hot org-group sheds
         while the others keep absorbing. *)
      let shedding =
        Shard.published_overloaded sh && depth >= max 1 (s.cap_g / 2)
      in
      if full || shedding then begin
        s.shed <- s.shed + 1;
        Obs.Metrics.incr m_shed;
        let msg =
          if full then Printf.sprintf "admission queue full (%d queued)" depth
          else Printf.sprintf "shedding load (overloaded, %d queued)" depth
        in
        reject Protocol.Backpressure msg (Some (Shard.published_retry_ms sh))
      end
      else begin
        (* The router-side leg of the request's trace: an instant on
           lane 1 carrying the client-issued trace id, paired with the
           owning shard's [shard.feed] span on its own lane. *)
        (if Obs.Trace.enabled () then
           let trace =
             match req with
             | Protocol.Submit { trace; _ }
             | Protocol.Fault { trace; _ }
             | Protocol.Endow { trace; _ } ->
                 trace
             | _ -> 0
           in
           let args =
             ("group", Obs.Json.Int grp)
             :: (if trace = 0 then [] else [ ("trace", Obs.Json.Int trace) ])
           in
           Obs.Trace.instant ~cat:"service" ~args "router.route");
        Shard.depth_incr sh;
        Shard.post_msg s.workers.(s.worker_of.(grp)) ~group:grp
          (Shard.Feed { tok = Feed_tok (conn, slot); req; t_enq = now })
      end

let route_request s conn req ~now =
  let slot = take_slot conn in
  if is_feed req then route_feed s conn slot req ~now
  else
    match req with
    | Protocol.Status ->
        start_gather s ~conn:(Some conn) ~slot `Status Shard.Q_status
    | Protocol.Psi -> start_gather s ~conn:(Some conn) ~slot `Psi Shard.Q_psi
    | Protocol.Snapshot ->
        if s.cfg.state_dir = None then
          deliver conn slot
            (Protocol.Error
               {
                 code = Protocol.Unsupported;
                 msg = "no state directory (daemon is ephemeral)";
                 retry_after_ms = None;
               })
        else start_gather s ~conn:(Some conn) ~slot `Snapshot Shard.Q_snapshot
    | Protocol.Drain { detail } ->
        s.draining <- true;
        start_gather s ~conn:(Some conn) ~slot `Drain
          (Shard.Q_drain { detail })
    (* Live scrapes answered on the router thread: the metrics registry
       and trace rings are process-global, so no shard round-trip is
       needed — the snapshot merges every domain's cells as-is. *)
    | Protocol.Metrics ->
        deliver conn slot (Protocol.Metrics_ok { metrics = Obs.Metrics.to_json () })
    | Protocol.Trace { limit } ->
        let events = List.length (Obs.Trace.events ()) in
        deliver conn slot
          (Protocol.Trace_ok
             {
               events = min events limit;
               dropped = Obs.Trace.dropped ();
               trace = Obs.Trace.to_json ~limit ();
             })
    | Protocol.Submit _ | Protocol.Fault _ | Protocol.Endow _ -> assert false

let enqueue_line s conn line =
  let now = Unix.gettimeofday () in
  match Protocol.request_of_line line with
  | Error msg ->
      let slot = take_slot conn in
      s.router_rejected <- s.router_rejected + 1;
      deliver conn slot
        (Protocol.Error { code = Protocol.Parse; msg; retry_after_ms = None })
  | Ok req -> route_request s conn req ~now

let handle_completions s =
  List.iter
    (function
      | Shard.Ack { tok = Feed_tok (conn, slot); resp } ->
          deliver conn slot resp
      | Shard.Ack { tok = Gather_tok _; _ } -> assert false
      | Shard.Part { tok = Gather_tok g; group; part } -> (
          match g.g_parts.(group) with
          | Some _ -> ()
          | None ->
              g.g_parts.(group) <- Some part;
              g.g_waiting <- g.g_waiting - 1;
              if g.g_waiting = 0 then finish_gather s g)
      | Shard.Part { tok = Feed_tok _; _ } -> assert false)
    (Shard.Mailbox.drain s.comp)

(* --- Socket plumbing ----------------------------------------------------- *)

let protect f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))

let split_lines s conn =
  let data = Buffer.contents conn.rbuf in
  let len = String.length data in
  let pos = ref 0 in
  (try
     while true do
       let i = String.index_from data !pos '\n' in
       enqueue_line s conn (String.sub data !pos (i - !pos));
       pos := i + 1
     done
   with Not_found -> ());
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf data !pos (len - !pos);
  if Buffer.length conn.rbuf > Protocol.max_line then begin
    Buffer.clear conn.rbuf;
    let slot = take_slot conn in
    s.router_rejected <- s.router_rejected + 1;
    deliver conn slot
      (Protocol.Error
         {
           code = Protocol.Parse;
           msg =
             Printf.sprintf "request line exceeds %d bytes" Protocol.max_line;
           retry_after_ms = None;
         });
    conn.eof <- true
  end

let read_conn s conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.eof <- true
  | n ->
      Buffer.add_subbytes conn.rbuf chunk 0 n;
      split_lines s conn
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      conn.closed <- true

let write_conn conn =
  let data = Buffer.contents conn.out in
  if data <> "" then
    match
      Unix.write conn.fd (Bytes.unsafe_of_string data) 0 (String.length data)
    with
    | n ->
        Buffer.clear conn.out;
        Buffer.add_substring conn.out data n (String.length data - n)
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        conn.closed <- true

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* A connection is dead when closed, or at EOF with nothing left to
   write {e and} nothing still in flight in the shards (next_emit has
   caught up with next_slot). *)
let reap s =
  let live, dead =
    List.partition
      (fun c ->
        not
          (c.closed
          || (c.eof && Buffer.length c.out = 0 && c.next_emit = c.next_slot)))
      s.conns
  in
  List.iter close_conn dead;
  s.conns <- live

let accept_conn s listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      (match s.cfg.addr with
      | Addr.Tcp _ -> (
          try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
      | Addr.Unix_sock _ -> ());
      s.conns <-
        {
          fd;
          rbuf = Buffer.create 1024;
          out = Buffer.create 1024;
          eof = false;
          closed = false;
          next_slot = 0;
          next_emit = 0;
          pending = Hashtbl.create 8;
        }
        :: s.conns
  | exception
      Unix.Unix_error
        ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED
          | Unix.ECONNRESET ),
          _,
          _ ) ->
      (* A connection that died between accept-readiness and accept(2)
         must not take the daemon down. *)
      ()

let flush_remaining s =
  (* After shutdown: give clients a few seconds to receive what they are
     owed, then close everything. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    reap s;
    let writers =
      List.filter_map
        (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
        s.conns
    in
    if writers <> [] && Unix.gettimeofday () < deadline then begin
      (match Unix.select [] writers [] 0.25 with
      | _, ws, _ ->
          List.iter (fun c -> if List.mem c.fd ws then write_conn c) s.conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ();
  List.iter close_conn s.conns;
  s.conns <- []

let rec serve_loop s listen_fd =
  if !term_requested && not s.draining then begin
    s.draining <- true;
    start_gather s ~conn:None ~slot:0 `Drain (Shard.Q_drain { detail = false })
  end;
  if s.shutdown && s.pending_gathers = 0 then ()
  else begin
    reap s;
    let readers =
      listen_fd
      :: Shard.Mailbox.wait_fd s.comp
      :: List.filter_map
           (fun c -> if c.eof || c.closed then None else Some c.fd)
           s.conns
    in
    let writers =
      List.filter_map
        (fun c ->
          if (not c.closed) && Buffer.length c.out > 0 then Some c.fd else None)
        s.conns
    in
    let timeout =
      if not (Shard.Mailbox.is_empty s.comp) then 0.0
      else if s.threaded then 1.0
      else Float.min 1.0 (Shard.wait_timeout s.workers.(0))
    in
    (match Unix.select readers writers [] timeout with
    | rs, ws, _ ->
        if List.mem listen_fd rs then accept_conn s listen_fd;
        List.iter
          (fun c -> if (not c.closed) && List.mem c.fd rs then read_conn s c)
          s.conns;
        if not s.threaded then Shard.pump s.workers.(0);
        handle_completions s;
        List.iter
          (fun c ->
            if (not c.closed) && (List.mem c.fd ws || Buffer.length c.out > 0)
            then write_conn c)
          s.conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* An idle tick still pumps the inline worker: overload recovery
           is observed calm, not absence of traffic. *)
        if not s.threaded then Shard.pump s.workers.(0);
        handle_completions s);
    serve_loop s listen_fd
  end

(* --- Startup ------------------------------------------------------------- *)

let ensure_dir dir =
  protect (fun () ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise (Unix.Unix_error (Unix.ENOTDIR, "state dir", dir)))

(* Resolve the durable identity and the on-disk layout.  A state dir is
   either flat (the pre-sharding layout: wal.ndjson + snapshot.json at
   top level, still written when groups = 1) or segmented (wal-0/ ..
   wal-<G-1>/, one per org-group).  When the dir holds a previous life,
   the recovered config wins over the command line — the durable
   identity must match the log being replayed. *)
let resolve_base cfg =
  let ( let* ) = Result.bind in
  let resume dir c =
    if not (Config.equal c cfg.service) then
      Obs.Log.warn ~component:"server"
        ~fields:[ ("state_dir", Obs.Json.String dir) ]
        "state dir holds a different configuration; resuming it (the \
         command-line config is ignored)";
    c
  in
  match cfg.state_dir with
  | None -> Ok cfg.service
  | Some dir -> (
      let* () = ensure_dir dir in
      match Wal.segments ~dir with
      | [] -> (
          let* r =
            Result.map_error Wal.boot_error_to_string (Wal.recover ~dir)
          in
          match r.Wal.r_config with
          | None -> Ok cfg.service
          | Some c ->
              if c.Config.groups > 1 then
                Error
                  (Printf.sprintf
                     "state dir %s: flat WAL layout holds a %d-group config"
                     dir c.Config.groups)
              else Ok (resume dir c))
      | segs -> (
          let n = List.length segs in
          if segs <> List.init n Fun.id then
            Error
              (Printf.sprintf
                 "state dir %s: segment directories are not contiguous \
                  (found %s)"
                 dir
                 (String.concat ", "
                    (List.map (fun g -> Printf.sprintf "wal-%d" g) segs)))
          else
            let* r0 =
              Result.map_error Wal.boot_error_to_string
                (Wal.recover ~dir:(Wal.segment_dir ~dir ~group:0))
            in
            match r0.Wal.r_config with
            | None ->
                Error
                  (Printf.sprintf
                     "state dir %s: segment wal-0 has no config header" dir)
            | Some c ->
                if c.Config.groups <> n then
                  Error
                    (Printf.sprintf
                       "state dir %s: config declares %d org-groups but %d \
                        segments exist"
                       dir c.Config.groups n)
                else Ok (resume dir c)))

let run ?(ready = fun () -> ()) cfg =
  let ( let* ) = Result.bind in
  term_requested := false;
  Obs.Trace.set_pid ~name:"router" 1;
  let* base = resolve_base cfg in
  let part = Partition.make base in
  let groups = Partition.groups part in
  let seg_dir grp =
    match cfg.state_dir with
    | None -> Ok None
    | Some dir ->
        if groups = 1 then Ok (Some dir)
        else
          let d = Wal.segment_dir ~dir ~group:grp in
          let* () = ensure_dir d in
          Ok (Some d)
  in
  let* sh =
    let rec go acc grp =
      if grp = groups then Ok (Array.of_list (List.rev acc))
      else
        let* sd = seg_dir grp in
        let* shard =
          Shard.create ~partition:part ~group:grp ~state_dir:sd
            ~overload:cfg.overload ~degrade_to:cfg.degrade_to
            ~snapshot_every:cfg.snapshot_every
            ~commit_interval:cfg.commit_interval ~commit_max:cfg.drain_batch ()
        in
        go (shard :: acc) (grp + 1)
    in
    go [] 0
  in
  let w_count = max 1 (min cfg.shards groups) in
  let threaded = w_count > 1 in
  let comp = Shard.Mailbox.create () in
  let cap_g = max 1 (cfg.queue_cap / groups) in
  let worker_of = Array.init groups (fun g -> g mod w_count) in
  let workers =
    Array.init w_count (fun w ->
        let shards =
          List.filter_map
            (fun g -> if worker_of.(g) = w then Some (g, sh.(g)) else None)
            (List.init groups Fun.id)
        in
        Shard.make_worker ~id:w ~shards ~drain_batch:cfg.drain_batch ~cap:cap_g
          ~post:(fun c -> Shard.Mailbox.push comp c))
  in
  Addr.cleanup cfg.addr;
  let* listen_fd =
    protect (fun () ->
        let fd = Unix.socket (Addr.domain cfg.addr) Unix.SOCK_STREAM 0 in
        (match cfg.addr with
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
        | Addr.Unix_sock _ -> ());
        (try
           Unix.bind fd (Addr.to_sockaddr cfg.addr);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd)
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> term_requested := true));
  let s =
    {
      cfg;
      base;
      part;
      sh;
      workers;
      worker_of;
      threaded;
      comp;
      cap_g;
      conns = [];
      router_rejected = 0;
      shed = 0;
      draining = false;
      shutdown = false;
      pending_gathers = 0;
    }
  in
  if threaded then Array.iter Shard.start_worker workers;
  ready ();
  serve_loop s listen_fd;
  flush_remaining s;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Addr.cleanup cfg.addr;
  Array.iter Shard.stop_worker workers;
  Shard.Mailbox.close comp;
  Ok ()
