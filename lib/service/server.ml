type config = {
  addr : Addr.t;
  service : Config.t;
  state_dir : string option;
  queue_cap : int;
  snapshot_every : int;
  drain_batch : int;
  degrade_to : string option;
  overload : Overload.config;
}

let make_config ?state_dir ?(queue_cap = 1024) ?(snapshot_every = 4096)
    ?(drain_batch = 256) ?degrade_to ?(overload = Overload.default) ~addr
    ~service () =
  {
    addr;
    service;
    state_dir;
    queue_cap;
    snapshot_every;
    drain_batch;
    degrade_to;
    overload;
  }

(* Health counters; no-ops unless the process enables Obs.Metrics. *)
let m_shed = Obs.Metrics.counter "service.shed"
let m_dup_acks = Obs.Metrics.counter "service.dup_acks"
let m_degrade = Obs.Metrics.counter "service.degrade_switches"
let m_recover = Obs.Metrics.counter "service.recover_switches"
let m_wal_sync_failures = Obs.Metrics.counter "service.wal_sync_failures"
let g_queue_depth = Obs.Metrics.gauge "service.queue_depth"
let g_ack_ewma = Obs.Metrics.gauge "service.ack_ewma_ms"

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  out : Buffer.t;
  mutable eof : bool;
  mutable closed : bool;
}

type queued = Req of Protocol.request | Reject of Protocol.error_code * string

type state = {
  cfg : config;
  base : Config.t;
      (* the durable identity: what the WAL header and snapshots carry.
         [online]'s own config may differ in [algorithm] while degraded. *)
  mutable online : Online.t;
  mutable estimator : string;  (* algorithm the live engine runs *)
  mutable writer : Wal.writer option;
  mutable seq : int;  (* last assigned sequence number *)
  mutable records_rev : Wal.record list;  (* every accepted record, newest first *)
  mutable since_snapshot : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable shed : int;  (* feeds refused with backpressure since boot *)
  mutable draining : bool;
  mutable shutdown : bool;
  queue : (conn * queued * float) Queue.t;  (* item + enqueue time *)
  mutable feed_depth : int;  (* submit/fault entries currently queued *)
  mutable conns : conn list;
  dedupe : (int, int * Protocol.response) Hashtbl.t;
      (* cid -> (last applied cseq, its cached ack).  Only *applied*
         feeds enter the table: rejections must stay retryable. *)
  detector : Overload.t;
}

(* Acknowledgements of one processing batch, in request order.  [Synced]
   responses are for feeds whose WAL record must reach disk first — they
   are replaced by a wal-error if the batch fsync fails. *)
type ack = Immediate of Protocol.response | Synced of Protocol.response

let term_requested = ref false

let emit conn resp =
  if not conn.closed then
    Buffer.add_string conn.out (Protocol.response_to_line resp)

let is_feed = function
  | Protocol.Submit _ | Protocol.Fault _ -> true
  | Protocol.Status | Protocol.Psi | Protocol.Snapshot | Protocol.Drain _ ->
      false

let degraded s = s.estimator <> s.base.Config.algorithm

let job_wait_summary () =
  if not (Obs.Metrics.enabled ()) then None
  else
    List.find_map
      (function
        | "sim.job_wait", Obs.Metrics.Histogram s -> Some s | _ -> None)
      (Obs.Metrics.snapshot ())

let build_status s =
  {
    Protocol.now = Online.now s.online;
    frontier = Online.frontier s.online;
    horizon = s.base.Config.horizon;
    orgs = Config.organizations s.base;
    machines = Config.total_machines s.base;
    accepted = s.accepted;
    rejected = s.rejected;
    queue_depth = s.feed_depth;
    queue_cap = s.cfg.queue_cap;
    draining = s.draining;
    waiting = Online.queue_depths s.online;
    stats = Online.stats s.online;
    job_wait = job_wait_summary ();
    estimator = s.estimator;
    degraded = degraded s;
    shed = s.shed;
    ack_ewma_ms = Overload.ack_ewma_ms s.detector;
  }

let schedule_rows s =
  Core.Schedule.placements (Online.schedule s.online)
  |> List.map (fun (p : Core.Schedule.placement) ->
         ( p.Core.Schedule.job.Core.Job.org,
           p.Core.Schedule.job.Core.Job.index,
           p.Core.Schedule.start,
           p.Core.Schedule.machine,
           p.Core.Schedule.duration ))

let build_drain_report s ~detail =
  {
    Protocol.d_now = Online.now s.online;
    d_psi_scaled = Online.psi_scaled s.online;
    d_parts = Online.parts s.online;
    d_stats = Online.stats s.online;
    d_schedule = (if detail then Some (schedule_rows s) else None);
  }

let do_snapshot s =
  match s.cfg.state_dir with
  | None -> Error "no state directory (daemon is ephemeral)"
  | Some dir -> (
      let snapshot =
        {
          Wal.config = s.base;
          last_seq = s.seq;
          records = List.rev s.records_rev;
        }
      in
      match Wal.write_snapshot ~dir snapshot with
      | Error _ as e -> e
      | Ok path -> (
          (* Compact: every record is covered by the snapshot now. *)
          Option.iter Wal.close s.writer;
          s.writer <- None;
          Chaos.Fs.point "before-wal-reset";
          match Wal.create ~dir ~config:s.base with
          | Error _ as e -> e
          | Ok w ->
              s.writer <- Some w;
              s.since_snapshot <- 0;
              Chaos.Fs.point "after-wal-reset";
              Ok path))

let code_of_online_error = function
  | Online.Drained -> Protocol.Draining
  | _ -> Protocol.Bad_request

let reject ?retry_after_ms s code msg =
  s.rejected <- s.rejected + 1;
  Immediate (Protocol.Error { code; msg; retry_after_ms })

(* Run the engine to the horizon, snapshot, and arm shutdown.  Shared by
   the [drain] request and the SIGTERM path. *)
let enter_drain s =
  s.draining <- true;
  Online.drain s.online;
  (match s.cfg.state_dir with
  | None -> ()
  | Some _ -> (
      match do_snapshot s with
      | Ok _ -> ()
      | Error msg -> Printf.eprintf "fairsched serve: final snapshot: %s\n%!" msg));
  s.shutdown <- true

(* At-most-once retransmission.  A feed carrying the (cid, cseq) of an
   already-applied one is answered from the cache — as [Synced], so a
   cached OK is still gated on the WAL fsync that covers the original
   record (a sync failure keeps the record's bytes pending; the cached
   ack must not outrun them to the client). *)
let dedupe_hit s ~cid ~cseq =
  if cid = 0 then None
  else
    match Hashtbl.find_opt s.dedupe cid with
    | Some (last, resp) when cseq = last ->
        Obs.Metrics.incr m_dup_acks;
        Some (Synced resp)
    | Some (last, _) when cseq < last && cseq > 0 ->
        Some
          (reject s Protocol.Bad_request
             (Printf.sprintf "stale cseq %d (last applied %d)" cseq last))
    | Some _ | None -> None

let remember s ~cid ~cseq resp =
  if cid <> 0 && cseq > 0 then Hashtbl.replace s.dedupe cid (cseq, resp)

let process_one s = function
  | Reject (code, msg) ->
      let retry_after_ms =
        if code = Protocol.Backpressure then
          Some (Overload.retry_after_ms s.detector)
        else None
      in
      reject ?retry_after_ms s code msg
  | Req (Protocol.Submit { org; user; release; size; cid; cseq }) -> (
      match dedupe_hit s ~cid ~cseq with
      | Some ack -> ack
      | None -> (
          if s.draining then reject s Protocol.Draining "daemon is draining"
          else
            match Online.check_submit s.online ~org ~size ~release with
            | Error e ->
                reject s (code_of_online_error e) (Online.error_to_string e)
            | Ok () -> (
                let seq = s.seq + 1 in
                s.seq <- seq;
                let record =
                  Wal.Submit { seq; org; user; release; size; cid; cseq }
                in
                Option.iter (fun w -> Wal.append w record) s.writer;
                s.records_rev <- record :: s.records_rev;
                s.accepted <- s.accepted + 1;
                s.since_snapshot <- s.since_snapshot + 1;
                match Online.submit s.online ~org ~user ~size ~release () with
                | Ok index ->
                    let resp =
                      Protocol.Submit_ok
                        { seq; org; index; now = Online.now s.online }
                    in
                    remember s ~cid ~cseq resp;
                    Synced resp
                | Error e ->
                    (* unreachable after check_submit; fail loudly *)
                    Immediate
                      (Protocol.Error
                         {
                           code = Protocol.Bad_request;
                           msg = Online.error_to_string e;
                           retry_after_ms = None;
                         }))))
  | Req (Protocol.Fault { time; event; cid; cseq }) -> (
      match dedupe_hit s ~cid ~cseq with
      | Some ack -> ack
      | None -> (
          if s.draining then reject s Protocol.Draining "daemon is draining"
          else
            match Online.check_fault s.online ~time event with
            | Error e ->
                reject s (code_of_online_error e) (Online.error_to_string e)
            | Ok () -> (
                let seq = s.seq + 1 in
                s.seq <- seq;
                let record = Wal.Fault { seq; time; event; cid; cseq } in
                Option.iter (fun w -> Wal.append w record) s.writer;
                s.records_rev <- record :: s.records_rev;
                s.accepted <- s.accepted + 1;
                s.since_snapshot <- s.since_snapshot + 1;
                match Online.fault s.online ~time event with
                | Ok () ->
                    let resp =
                      Protocol.Fault_ok { seq; now = Online.now s.online }
                    in
                    remember s ~cid ~cseq resp;
                    Synced resp
                | Error e ->
                    Immediate
                      (Protocol.Error
                         {
                           code = Protocol.Bad_request;
                           msg = Online.error_to_string e;
                           retry_after_ms = None;
                         }))))
  | Req Protocol.Status -> Immediate (Protocol.Status_ok (build_status s))
  | Req Protocol.Psi ->
      Immediate
        (Protocol.Psi_ok
           {
             now = Online.now s.online;
             psi_scaled = Online.psi_scaled s.online;
             parts = Online.parts s.online;
           })
  | Req Protocol.Snapshot -> (
      if s.cfg.state_dir = None then
        Immediate
          (Protocol.Error
             {
               code = Protocol.Unsupported;
               msg = "no state directory (daemon is ephemeral)";
               retry_after_ms = None;
             })
      else
        match do_snapshot s with
        | Ok path -> Immediate (Protocol.Snapshot_ok { seq = s.seq; path })
        | Error msg ->
            Immediate
              (Protocol.Error
                 { code = Protocol.Wal_error; msg; retry_after_ms = None }))
  | Req (Protocol.Drain { detail }) ->
      if s.draining then
        Immediate (Protocol.Drain_ok (build_drain_report s ~detail))
      else begin
        enter_drain s;
        Immediate (Protocol.Drain_ok (build_drain_report s ~detail))
      end

let process_batch s =
  let batch = ref [] in
  let n = ref 0 in
  (* [drain_batch] bounds the expensive work — feeds entering the engine
     — per iteration.  Rejects and control requests are answered without
     consuming the budget: shedding must stay cheap under the very flood
     that caused it, or the backlog of Backpressure answers would starve
     the queue it was shed to protect.  FIFO order is preserved either
     way. *)
  while !n < s.cfg.drain_batch && not (Queue.is_empty s.queue) do
    let conn, item, t_enq = Queue.pop s.queue in
    let feed =
      match item with
      | Req r when is_feed r ->
          s.feed_depth <- s.feed_depth - 1;
          true
      | _ -> false
    in
    let ack = process_one s item in
    batch := (conn, ack, (if feed then Some t_enq else None)) :: !batch;
    if feed then incr n
  done;
  (* Sync whenever the WAL owes bytes to disk — not only when this batch
     appended.  A previously failed sync leaves records pending (and
     their clients answered with wal-error); retrying here is what makes
     a transient ENOSPC recoverable without a restart. *)
  let sync_result =
    match s.writer with
    | Some w when Wal.pending w ->
        let r = Wal.sync w in
        (match r with
        | Error _ -> Obs.Metrics.incr m_wal_sync_failures
        | Ok () -> ());
        r
    | Some _ | None -> Ok ()
  in
  let ack_time = Unix.gettimeofday () in
  List.iter
    (fun (conn, ack, t_enq) ->
      (match (ack, sync_result) with
      | Immediate resp, _ | Synced resp, Ok () -> emit conn resp
      | Synced _, Error msg ->
          emit conn
            (Protocol.Error
               { code = Protocol.Wal_error; msg; retry_after_ms = None }));
      match t_enq with
      | Some t -> Overload.observe_ack s.detector ~latency_ms:((ack_time -. t) *. 1000.0)
      | None -> ())
    (List.rev !batch);
  Overload.observe_queue s.detector ~depth:s.feed_depth ~cap:s.cfg.queue_cap;
  Obs.Metrics.set g_queue_depth (float_of_int s.feed_depth);
  Obs.Metrics.set g_ack_ewma (Overload.ack_ewma_ms s.detector);
  (* Automatic compaction once enough records accumulated since the last
     snapshot. *)
  if
    s.cfg.state_dir <> None
    && s.cfg.snapshot_every > 0
    && s.since_snapshot >= s.cfg.snapshot_every
  then
    match do_snapshot s with
    | Ok _ -> ()
    | Error msg -> Printf.eprintf "fairsched serve: auto-snapshot: %s\n%!" msg

(* --- Degraded mode ------------------------------------------------------- *)

(* Replay previously accepted feeds into a fresh engine.  [Mode] records
   are skipped (they describe estimator switches, not engine input);
   [dedupe], when given, is rebuilt alongside — the cached acks of a
   deterministic replay are identical to the originals. *)
let replay ?dedupe online records =
  let rec go = function
    | [] -> Ok ()
    | Wal.Submit { seq; org; user; release; size; cid; cseq } :: rest -> (
        match Online.submit online ~org ~user ~size ~release () with
        | Ok index ->
            (match dedupe with
            | Some tbl when cid <> 0 && cseq > 0 ->
                Hashtbl.replace tbl cid
                  ( cseq,
                    Protocol.Submit_ok
                      { seq; org; index; now = Online.now online } )
            | Some _ | None -> ());
            go rest
        | Error e ->
            Error
              (Printf.sprintf "replay: record %d rejected: %s" seq
                 (Online.error_to_string e)))
    | Wal.Fault { seq; time; event; cid; cseq } :: rest -> (
        match Online.fault online ~time event with
        | Ok () ->
            (match dedupe with
            | Some tbl when cid <> 0 && cseq > 0 ->
                Hashtbl.replace tbl cid
                  (cseq, Protocol.Fault_ok { seq; now = Online.now online })
            | Some _ | None -> ());
            go rest
        | Error e ->
            Error
              (Printf.sprintf "replay: record %d rejected: %s" seq
                 (Online.error_to_string e)))
    | Wal.Mode _ :: rest -> go rest
  in
  go records

(* The estimator a record list leaves the daemon in: the last Mode
   record wins, the base algorithm otherwise. *)
let final_estimator ~base records =
  List.fold_left
    (fun acc r -> match r with Wal.Mode { estimator; _ } -> estimator | _ -> acc)
    base.Config.algorithm records

(* Switch the live estimator by rebuild-and-replay: log a Mode record,
   construct a fresh engine under the new algorithm, and feed it every
   accepted record.  Kernel determinism makes this exactly "a fresh
   session with the new estimator given the same history" — which is
   also precisely what crash recovery reproduces from the log, so a
   crash at any point around the switch stays bit-identical. *)
let switch_estimator s spec =
  let seq = s.seq + 1 in
  s.seq <- seq;
  let record = Wal.Mode { seq; estimator = spec } in
  Option.iter (fun w -> Wal.append w record) s.writer;
  s.records_rev <- record :: s.records_rev;
  s.since_snapshot <- s.since_snapshot + 1;
  let online = Online.create { s.base with Config.algorithm = spec } in
  match replay online (List.rev s.records_rev) with
  | Ok () ->
      s.online <- online;
      s.estimator <- spec;
      true
  | Error msg ->
      (* Accepted records cannot be rejected on replay (determinism);
         reaching here is an invariant violation.  Keep the old engine
         rather than serve from a half-fed one. *)
      Printf.eprintf "fairsched serve: estimator switch to %s failed: %s\n%!"
        spec msg;
      false

let maybe_switch s =
  match s.cfg.degrade_to with
  | None -> ()
  | Some spec ->
      if not (s.draining || s.shutdown) then begin
        match Overload.level s.detector with
        | Overload.Overloaded when s.estimator <> spec ->
            if switch_estimator s spec then begin
              Obs.Metrics.incr m_degrade;
              Printf.eprintf
                "fairsched serve: overload: degrading estimator to %s\n%!" spec
            end
        | Overload.Normal when degraded s ->
            if switch_estimator s s.base.Config.algorithm then begin
              Obs.Metrics.incr m_recover;
              Printf.eprintf
                "fairsched serve: recovered: estimator back to %s\n%!"
                s.base.Config.algorithm
            end
        | Overload.Overloaded | Overload.Normal -> ()
      end

(* --- Socket plumbing ---------------------------------------------------- *)

let protect f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))

let enqueue_line s conn line =
  let now = Unix.gettimeofday () in
  match Protocol.request_of_line line with
  | Error msg -> Queue.push (conn, Reject (Protocol.Parse, msg), now) s.queue
  | Ok req ->
      if is_feed req then begin
        let full = s.feed_depth >= s.cfg.queue_cap in
        (* Under sustained overload, shed before the hard cap: refusing
           cheaply at half occupancy keeps ack latency bounded for the
           feeds already admitted. *)
        let shedding =
          Overload.level s.detector = Overload.Overloaded
          && s.feed_depth >= max 1 (s.cfg.queue_cap / 2)
        in
        if full || shedding then begin
          s.shed <- s.shed + 1;
          Obs.Metrics.incr m_shed;
          let msg =
            if full then
              Printf.sprintf "admission queue full (%d queued)" s.feed_depth
            else
              Printf.sprintf "shedding load (overloaded, %d queued)"
                s.feed_depth
          in
          Queue.push (conn, Reject (Protocol.Backpressure, msg), now) s.queue
        end
        else begin
          s.feed_depth <- s.feed_depth + 1;
          Queue.push (conn, Req req, now) s.queue
        end
      end
      else Queue.push (conn, Req req, now) s.queue

let split_lines s conn =
  let data = Buffer.contents conn.rbuf in
  let len = String.length data in
  let pos = ref 0 in
  (try
     while true do
       let i = String.index_from data !pos '\n' in
       enqueue_line s conn (String.sub data !pos (i - !pos));
       pos := i + 1
     done
   with Not_found -> ());
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf data !pos (len - !pos);
  if Buffer.length conn.rbuf > Protocol.max_line then begin
    Buffer.clear conn.rbuf;
    emit conn
      (Protocol.Error
         {
           code = Protocol.Parse;
           msg =
             Printf.sprintf "request line exceeds %d bytes" Protocol.max_line;
           retry_after_ms = None;
         });
    conn.eof <- true
  end

let read_conn s conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.eof <- true
  | n ->
      Buffer.add_subbytes conn.rbuf chunk 0 n;
      split_lines s conn
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      conn.closed <- true

let write_conn conn =
  let data = Buffer.contents conn.out in
  if data <> "" then
    match
      Unix.write conn.fd (Bytes.unsafe_of_string data) 0 (String.length data)
    with
    | n ->
        Buffer.clear conn.out;
        Buffer.add_substring conn.out data n (String.length data - n)
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception
        Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        conn.closed <- true

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let reap s =
  let live, dead =
    List.partition
      (fun c -> not (c.closed || (c.eof && Buffer.length c.out = 0)))
      s.conns
  in
  List.iter close_conn dead;
  s.conns <- live

let accept_conn s listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      (match s.cfg.addr with
      | Addr.Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
      | Addr.Unix_sock _ -> ());
      s.conns <-
        { fd; rbuf = Buffer.create 1024; out = Buffer.create 1024;
          eof = false; closed = false }
        :: s.conns
  | exception
      Unix.Unix_error
        ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED
          | Unix.ECONNRESET ),
          _,
          _ ) ->
      (* A connection that died between accept-readiness and accept(2)
         must not take the daemon down. *)
      ()

let flush_remaining s =
  (* After shutdown: give clients a few seconds to receive what they are
     owed, then close everything. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    reap s;
    let writers =
      List.filter_map
        (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
        s.conns
    in
    if writers <> [] && Unix.gettimeofday () < deadline then begin
      (match Unix.select [] writers [] 0.25 with
      | _, ws, _ ->
          List.iter
            (fun c -> if List.mem c.fd ws then write_conn c)
            s.conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ();
  List.iter close_conn s.conns;
  s.conns <- []

let rec serve_loop s listen_fd =
  if !term_requested && not s.draining then enter_drain s;
  if s.shutdown then flush_remaining s
  else begin
    reap s;
    let readers =
      listen_fd
      :: List.filter_map
           (fun c -> if c.eof || c.closed then None else Some c.fd)
           s.conns
    in
    let writers =
      List.filter_map
        (fun c ->
          if (not c.closed) && Buffer.length c.out > 0 then Some c.fd else None)
        s.conns
    in
    let timeout = if Queue.is_empty s.queue then 1.0 else 0.0 in
    (match Unix.select readers writers [] timeout with
    | rs, ws, _ ->
        if List.mem listen_fd rs then accept_conn s listen_fd;
        List.iter
          (fun c -> if (not c.closed) && List.mem c.fd rs then read_conn s c)
          s.conns;
        process_batch s;
        maybe_switch s;
        List.iter
          (fun c -> if (not c.closed) && (List.mem c.fd ws || Buffer.length c.out > 0) then write_conn c)
          s.conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* An idle tick still updates the detector: recovery from
           overload is observed calm, not absence of traffic. *)
        Overload.observe_queue s.detector ~depth:s.feed_depth
          ~cap:s.cfg.queue_cap;
        maybe_switch s);
    serve_loop s listen_fd
  end

(* --- Startup ------------------------------------------------------------ *)

let ensure_dir dir =
  protect (fun () ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise
          (Unix.Unix_error (Unix.ENOTDIR, "state dir", dir)))

let run ?(ready = fun () -> ()) cfg =
  let ( let* ) = Result.bind in
  term_requested := false;
  let* base, records, last_seq =
    match cfg.state_dir with
    | None -> Ok (cfg.service, [], 0)
    | Some dir ->
        let* () = ensure_dir dir in
        let* r =
          Result.map_error Wal.boot_error_to_string (Wal.recover ~dir)
        in
        let base =
          match r.Wal.r_config with
          | None -> cfg.service
          | Some c ->
              if not (Config.equal c cfg.service) then
                Printf.eprintf
                  "fairsched serve: state dir %s holds a different \
                   configuration; resuming it (the command-line config is \
                   ignored)\n\
                   %!"
                  dir;
              c
        in
        Ok (base, r.Wal.r_records, r.Wal.r_last_seq)
  in
  (* Recovery shortcut for Mode records: rather than re-enacting every
     mid-life estimator switch, build the engine once under the final
     estimator and feed it everything.  Equivalent by induction — each
     switch was itself defined as "fresh engine + full history". *)
  let estimator = final_estimator ~base records in
  let online =
    Online.create
      (if estimator = base.Config.algorithm then base
       else { base with Config.algorithm = estimator })
  in
  let dedupe = Hashtbl.create 64 in
  let* () = replay ~dedupe online records in
  (* Compact on boot: one snapshot covering everything recovered, then a
     fresh WAL.  A crash right here is safe — the snapshot is atomic and
     the old WAL only duplicates records the sequence filter drops. *)
  let* writer =
    match cfg.state_dir with
    | None -> Ok None
    | Some dir ->
        let* () =
          if records = [] then Ok ()
          else
            Result.map (fun (_ : string) -> ())
              (Wal.write_snapshot ~dir
                 { Wal.config = base; last_seq; records })
        in
        Result.map Option.some (Wal.create ~dir ~config:base)
  in
  Addr.cleanup cfg.addr;
  let* listen_fd =
    protect (fun () ->
        let fd = Unix.socket (Addr.domain cfg.addr) Unix.SOCK_STREAM 0 in
        (match cfg.addr with
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
        | Addr.Unix_sock _ -> ());
        (try
           Unix.bind fd (Addr.to_sockaddr cfg.addr);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd)
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> term_requested := true));
  let s =
    {
      cfg;
      base;
      online;
      estimator;
      writer;
      seq = last_seq;
      records_rev = List.rev records;
      since_snapshot = 0;
      accepted = List.length (List.filter Wal.is_feed records);
      rejected = 0;
      shed = 0;
      draining = false;
      shutdown = false;
      queue = Queue.create ();
      feed_depth = 0;
      conns = [];
      dedupe;
      detector =
        Overload.create ~config:cfg.overload
          ~now_ms:(fun () -> Obs.Clock.now_s () *. 1000.0)
          ();
    }
  in
  ready ();
  serve_loop s listen_fd;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Addr.cleanup cfg.addr;
  Option.iter Wal.close s.writer;
  Ok ()
