type config = {
  addr : Addr.t;
  service : Config.t;
  state_dir : string option;
  queue_cap : int;
  snapshot_every : int;
  drain_batch : int;
}

let make_config ?state_dir ?(queue_cap = 1024) ?(snapshot_every = 4096)
    ?(drain_batch = 256) ~addr ~service () =
  { addr; service; state_dir; queue_cap; snapshot_every; drain_batch }

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  out : Buffer.t;
  mutable eof : bool;
  mutable closed : bool;
}

type queued = Req of Protocol.request | Reject of Protocol.error_code * string

type state = {
  cfg : config;
  online : Online.t;
  mutable writer : Wal.writer option;
  mutable seq : int;  (* last assigned sequence number *)
  mutable records_rev : Wal.record list;  (* every accepted record, newest first *)
  mutable since_snapshot : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable draining : bool;
  mutable shutdown : bool;
  queue : (conn * queued) Queue.t;
  mutable feed_depth : int;  (* submit/fault entries currently queued *)
  mutable conns : conn list;
}

(* Acknowledgements of one processing batch, in request order.  [Synced]
   responses are for feeds whose WAL record must reach disk first — they
   are replaced by a wal-error if the batch fsync fails. *)
type ack = Immediate of Protocol.response | Synced of Protocol.response

let term_requested = ref false

let emit conn resp =
  if not conn.closed then
    Buffer.add_string conn.out (Protocol.response_to_line resp)

let is_feed = function
  | Protocol.Submit _ | Protocol.Fault _ -> true
  | Protocol.Status | Protocol.Psi | Protocol.Snapshot | Protocol.Drain _ ->
      false

let job_wait_summary () =
  if not (Obs.Metrics.enabled ()) then None
  else
    List.find_map
      (function
        | "sim.job_wait", Obs.Metrics.Histogram s -> Some s | _ -> None)
      (Obs.Metrics.snapshot ())

let build_status s =
  let service = Online.config s.online in
  {
    Protocol.now = Online.now s.online;
    frontier = Online.frontier s.online;
    horizon = service.Config.horizon;
    orgs = Config.organizations service;
    machines = Config.total_machines service;
    accepted = s.accepted;
    rejected = s.rejected;
    queue_depth = s.feed_depth;
    queue_cap = s.cfg.queue_cap;
    draining = s.draining;
    waiting = Online.queue_depths s.online;
    stats = Online.stats s.online;
    job_wait = job_wait_summary ();
  }

let schedule_rows s =
  Core.Schedule.placements (Online.schedule s.online)
  |> List.map (fun (p : Core.Schedule.placement) ->
         ( p.Core.Schedule.job.Core.Job.org,
           p.Core.Schedule.job.Core.Job.index,
           p.Core.Schedule.start,
           p.Core.Schedule.machine,
           p.Core.Schedule.duration ))

let build_drain_report s ~detail =
  {
    Protocol.d_now = Online.now s.online;
    d_psi_scaled = Online.psi_scaled s.online;
    d_parts = Online.parts s.online;
    d_stats = Online.stats s.online;
    d_schedule = (if detail then Some (schedule_rows s) else None);
  }

let do_snapshot s =
  match s.cfg.state_dir with
  | None -> Error "no state directory (daemon is ephemeral)"
  | Some dir -> (
      let snapshot =
        {
          Wal.config = Online.config s.online;
          last_seq = s.seq;
          records = List.rev s.records_rev;
        }
      in
      match Wal.write_snapshot ~dir snapshot with
      | Error _ as e -> e
      | Ok path -> (
          (* Compact: every record is covered by the snapshot now. *)
          Option.iter Wal.close s.writer;
          match Wal.create ~dir ~config:(Online.config s.online) with
          | Error _ as e -> e
          | Ok w ->
              s.writer <- Some w;
              s.since_snapshot <- 0;
              Ok path))

let code_of_online_error = function
  | Online.Drained -> Protocol.Draining
  | _ -> Protocol.Bad_request

let reject s code msg =
  s.rejected <- s.rejected + 1;
  Immediate (Protocol.Error { code; msg })

(* Run the engine to the horizon, snapshot, and arm shutdown.  Shared by
   the [drain] request and the SIGTERM path. *)
let enter_drain s =
  s.draining <- true;
  Online.drain s.online;
  (match s.cfg.state_dir with
  | None -> ()
  | Some _ -> (
      match do_snapshot s with
      | Ok _ -> ()
      | Error msg -> Printf.eprintf "fairsched serve: final snapshot: %s\n%!" msg));
  s.shutdown <- true

let process_one s = function
  | Reject (code, msg) -> reject s code msg
  | Req (Protocol.Submit { org; user; release; size }) -> (
      if s.draining then reject s Protocol.Draining "daemon is draining"
      else
        match Online.check_submit s.online ~org ~size ~release with
        | Error e ->
            reject s (code_of_online_error e) (Online.error_to_string e)
        | Ok () -> (
            let seq = s.seq + 1 in
            s.seq <- seq;
            let record = Wal.Submit { seq; org; user; release; size } in
            Option.iter (fun w -> Wal.append w record) s.writer;
            s.records_rev <- record :: s.records_rev;
            s.accepted <- s.accepted + 1;
            s.since_snapshot <- s.since_snapshot + 1;
            match Online.submit s.online ~org ~user ~size ~release () with
            | Ok index ->
                Synced
                  (Protocol.Submit_ok
                     { seq; org; index; now = Online.now s.online })
            | Error e ->
                (* unreachable after check_submit; fail loudly *)
                Immediate
                  (Protocol.Error
                     {
                       code = Protocol.Bad_request;
                       msg = Online.error_to_string e;
                     })))
  | Req (Protocol.Fault { time; event }) -> (
      if s.draining then reject s Protocol.Draining "daemon is draining"
      else
        match Online.check_fault s.online ~time event with
        | Error e ->
            reject s (code_of_online_error e) (Online.error_to_string e)
        | Ok () -> (
            let seq = s.seq + 1 in
            s.seq <- seq;
            let record = Wal.Fault { seq; time; event } in
            Option.iter (fun w -> Wal.append w record) s.writer;
            s.records_rev <- record :: s.records_rev;
            s.accepted <- s.accepted + 1;
            s.since_snapshot <- s.since_snapshot + 1;
            match Online.fault s.online ~time event with
            | Ok () ->
                Synced (Protocol.Fault_ok { seq; now = Online.now s.online })
            | Error e ->
                Immediate
                  (Protocol.Error
                     {
                       code = Protocol.Bad_request;
                       msg = Online.error_to_string e;
                     })))
  | Req Protocol.Status -> Immediate (Protocol.Status_ok (build_status s))
  | Req Protocol.Psi ->
      Immediate
        (Protocol.Psi_ok
           {
             now = Online.now s.online;
             psi_scaled = Online.psi_scaled s.online;
             parts = Online.parts s.online;
           })
  | Req Protocol.Snapshot -> (
      if s.cfg.state_dir = None then
        Immediate
          (Protocol.Error
             {
               code = Protocol.Unsupported;
               msg = "no state directory (daemon is ephemeral)";
             })
      else
        match do_snapshot s with
        | Ok path -> Immediate (Protocol.Snapshot_ok { seq = s.seq; path })
        | Error msg ->
            Immediate (Protocol.Error { code = Protocol.Wal_error; msg }))
  | Req (Protocol.Drain { detail }) ->
      if s.draining then
        Immediate (Protocol.Drain_ok (build_drain_report s ~detail))
      else begin
        enter_drain s;
        Immediate (Protocol.Drain_ok (build_drain_report s ~detail))
      end

let process_batch s =
  let batch = ref [] in
  let n = ref 0 in
  let appended = ref false in
  while !n < s.cfg.drain_batch && not (Queue.is_empty s.queue) do
    let conn, item = Queue.pop s.queue in
    (match item with
    | Req r when is_feed r -> s.feed_depth <- s.feed_depth - 1
    | _ -> ());
    let ack = process_one s item in
    (match ack with Synced _ -> appended := true | Immediate _ -> ());
    batch := (conn, ack) :: !batch;
    incr n
  done;
  let sync_result =
    if !appended then
      match s.writer with Some w -> Wal.sync w | None -> Ok ()
    else Ok ()
  in
  List.iter
    (fun (conn, ack) ->
      match (ack, sync_result) with
      | Immediate resp, _ | Synced resp, Ok () -> emit conn resp
      | Synced _, Error msg ->
          emit conn (Protocol.Error { code = Protocol.Wal_error; msg }))
    (List.rev !batch);
  (* Automatic compaction once enough records accumulated since the last
     snapshot. *)
  if
    s.cfg.state_dir <> None
    && s.cfg.snapshot_every > 0
    && s.since_snapshot >= s.cfg.snapshot_every
  then
    match do_snapshot s with
    | Ok _ -> ()
    | Error msg -> Printf.eprintf "fairsched serve: auto-snapshot: %s\n%!" msg

(* --- Socket plumbing ---------------------------------------------------- *)

let protect f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))

let enqueue_line s conn line =
  match Protocol.request_of_line line with
  | Error msg ->
      Queue.push (conn, Reject (Protocol.Parse, msg)) s.queue
  | Ok req ->
      if is_feed req && s.feed_depth >= s.cfg.queue_cap then
        Queue.push
          ( conn,
            Reject
              ( Protocol.Backpressure,
                Printf.sprintf "admission queue full (%d queued)" s.feed_depth
              ) )
          s.queue
      else begin
        if is_feed req then s.feed_depth <- s.feed_depth + 1;
        Queue.push (conn, Req req) s.queue
      end

let split_lines s conn =
  let data = Buffer.contents conn.rbuf in
  let len = String.length data in
  let pos = ref 0 in
  (try
     while true do
       let i = String.index_from data !pos '\n' in
       enqueue_line s conn (String.sub data !pos (i - !pos));
       pos := i + 1
     done
   with Not_found -> ());
  Buffer.clear conn.rbuf;
  Buffer.add_substring conn.rbuf data !pos (len - !pos);
  if Buffer.length conn.rbuf > Protocol.max_line then begin
    Buffer.clear conn.rbuf;
    emit conn
      (Protocol.Error
         {
           code = Protocol.Parse;
           msg =
             Printf.sprintf "request line exceeds %d bytes" Protocol.max_line;
         });
    conn.eof <- true
  end

let read_conn s conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.eof <- true
  | n ->
      Buffer.add_subbytes conn.rbuf chunk 0 n;
      split_lines s conn
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      conn.closed <- true

let write_conn conn =
  let data = Buffer.contents conn.out in
  if data <> "" then
    match
      Unix.write conn.fd (Bytes.unsafe_of_string data) 0 (String.length data)
    with
    | n ->
        Buffer.clear conn.out;
        Buffer.add_substring conn.out data n (String.length data - n)
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception
        Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        conn.closed <- true

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let reap s =
  let live, dead =
    List.partition
      (fun c -> not (c.closed || (c.eof && Buffer.length c.out = 0)))
      s.conns
  in
  List.iter close_conn dead;
  s.conns <- live

let accept_conn s listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      (match s.cfg.addr with
      | Addr.Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
      | Addr.Unix_sock _ -> ());
      s.conns <-
        { fd; rbuf = Buffer.create 1024; out = Buffer.create 1024;
          eof = false; closed = false }
        :: s.conns
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    -> ()

let flush_remaining s =
  (* After shutdown: give clients a few seconds to receive what they are
     owed, then close everything. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    reap s;
    let writers =
      List.filter_map
        (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
        s.conns
    in
    if writers <> [] && Unix.gettimeofday () < deadline then begin
      (match Unix.select [] writers [] 0.25 with
      | _, ws, _ ->
          List.iter
            (fun c -> if List.mem c.fd ws then write_conn c)
            s.conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ();
  List.iter close_conn s.conns;
  s.conns <- []

let rec serve_loop s listen_fd =
  if !term_requested && not s.draining then enter_drain s;
  if s.shutdown then flush_remaining s
  else begin
    reap s;
    let readers =
      listen_fd
      :: List.filter_map
           (fun c -> if c.eof || c.closed then None else Some c.fd)
           s.conns
    in
    let writers =
      List.filter_map
        (fun c ->
          if (not c.closed) && Buffer.length c.out > 0 then Some c.fd else None)
        s.conns
    in
    let timeout = if Queue.is_empty s.queue then 1.0 else 0.0 in
    (match Unix.select readers writers [] timeout with
    | rs, ws, _ ->
        if List.mem listen_fd rs then accept_conn s listen_fd;
        List.iter
          (fun c -> if (not c.closed) && List.mem c.fd rs then read_conn s c)
          s.conns;
        process_batch s;
        List.iter
          (fun c -> if (not c.closed) && (List.mem c.fd ws || Buffer.length c.out > 0) then write_conn c)
          s.conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    serve_loop s listen_fd
  end

(* --- Startup ------------------------------------------------------------ *)

let ensure_dir dir =
  protect (fun () ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise
          (Unix.Unix_error (Unix.ENOTDIR, "state dir", dir)))

let replay online records =
  let rec go = function
    | [] -> Ok ()
    | Wal.Submit { seq; org; user; release; size } :: rest -> (
        match Online.submit online ~org ~user ~size ~release () with
        | Ok _ -> go rest
        | Error e ->
            Error
              (Printf.sprintf "replay: record %d rejected: %s" seq
                 (Online.error_to_string e)))
    | Wal.Fault { seq; time; event } :: rest -> (
        match Online.fault online ~time event with
        | Ok () -> go rest
        | Error e ->
            Error
              (Printf.sprintf "replay: record %d rejected: %s" seq
                 (Online.error_to_string e)))
  in
  go records

let run ?(ready = fun () -> ()) cfg =
  let ( let* ) = Result.bind in
  term_requested := false;
  let* service, records, last_seq =
    match cfg.state_dir with
    | None -> Ok (cfg.service, [], 0)
    | Some dir ->
        let* () = ensure_dir dir in
        let* r = Wal.recover ~dir in
        let service =
          match r.Wal.r_config with
          | None -> cfg.service
          | Some c ->
              if not (Config.equal c cfg.service) then
                Printf.eprintf
                  "fairsched serve: state dir %s holds a different \
                   configuration; resuming it (the command-line config is \
                   ignored)\n\
                   %!"
                  dir;
              c
        in
        Ok (service, r.Wal.r_records, r.Wal.r_last_seq)
  in
  let online = Online.create service in
  let* () = replay online records in
  (* Compact on boot: one snapshot covering everything recovered, then a
     fresh WAL.  A crash right here is safe — the snapshot is atomic and
     the old WAL only duplicates records the sequence filter drops. *)
  let* writer =
    match cfg.state_dir with
    | None -> Ok None
    | Some dir ->
        let* () =
          if records = [] then Ok ()
          else
            Result.map (fun (_ : string) -> ())
              (Wal.write_snapshot ~dir
                 { Wal.config = service; last_seq; records })
        in
        Result.map Option.some (Wal.create ~dir ~config:service)
  in
  Addr.cleanup cfg.addr;
  let* listen_fd =
    protect (fun () ->
        let fd = Unix.socket (Addr.domain cfg.addr) Unix.SOCK_STREAM 0 in
        (match cfg.addr with
        | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
        | Addr.Unix_sock _ -> ());
        (try
           Unix.bind fd (Addr.to_sockaddr cfg.addr);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd)
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> term_requested := true));
  let s =
    {
      cfg;
      online;
      writer;
      seq = last_seq;
      records_rev = List.rev records;
      since_snapshot = 0;
      accepted = List.length records;
      rejected = 0;
      draining = false;
      shutdown = false;
      queue = Queue.create ();
      feed_depth = 0;
      conns = [];
    }
  in
  ready ();
  serve_loop s listen_fd;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Addr.cleanup cfg.addr;
  Option.iter Wal.close s.writer;
  Ok ()
