type t = {
  base : Config.t;
  groups : int;
  org_lo : int array;  (* length groups+1; org_lo.(g) = g*k/G *)
  mach_lo : int array;  (* length groups+1; global machine offset of each block *)
  org_owner : int array;  (* length k *)
  mach_owner : int array;  (* length total_machines *)
}

let make (base : Config.t) =
  let k = Config.organizations base in
  let g = base.Config.groups in
  let org_lo = Array.init (g + 1) (fun i -> i * k / g) in
  (* machine ids are org-contiguous: prefix-sum the endowments *)
  let mach_off = Array.make (k + 1) 0 in
  for o = 0 to k - 1 do
    mach_off.(o + 1) <- mach_off.(o) + base.Config.machines.(o)
  done;
  let mach_lo = Array.map (fun o -> mach_off.(o)) org_lo in
  let org_owner = Array.make k 0 in
  let mach_owner = Array.make mach_off.(k) 0 in
  for grp = 0 to g - 1 do
    for o = org_lo.(grp) to org_lo.(grp + 1) - 1 do
      org_owner.(o) <- grp
    done;
    for m = mach_lo.(grp) to mach_lo.(grp + 1) - 1 do
      mach_owner.(m) <- grp
    done
  done;
  { base; groups = g; org_lo; mach_lo; org_owner; mach_owner }

let groups t = t.groups
let config t = t.base
let group_of_org t o = t.org_owner.(o)
let group_of_machine t m = t.mach_owner.(m)
let org_range t g = (t.org_lo.(g), t.org_lo.(g + 1))
let machine_range t g = (t.mach_lo.(g), t.mach_lo.(g + 1))
let local_org t o = o - t.org_lo.(t.org_owner.(o))
let local_machine t m = m - t.mach_lo.(t.mach_owner.(m))
let global_org t ~group lo = t.org_lo.(group) + lo
let global_machine t ~group lm = t.mach_lo.(group) + lm

let sub_config t g =
  let lo, hi = org_range t g in
  let mlo, mhi = machine_range t g in
  let machines = Array.sub t.base.Config.machines lo (hi - lo) in
  let speeds =
    Option.map (fun sp -> Array.sub sp mlo (mhi - mlo)) t.base.Config.speeds
  in
  match
    Config.make ?speeds
      ?max_restarts:t.base.Config.max_restarts
      ?workers:t.base.Config.workers
      ~federated:t.base.Config.federated ~machines
      ~horizon:t.base.Config.horizon ~algorithm:t.base.Config.algorithm
      ~seed:t.base.Config.seed ()
  with
  | Ok c -> c
  | Error e ->
      (* Config.make validated every group when the base config was built *)
      invalid_arg (Printf.sprintf "Partition.sub_config: group %d: %s" g e)

let scatter_int t f =
  let out = Array.make (Config.organizations t.base) 0 in
  for g = 0 to t.groups - 1 do
    let lo, _ = org_range t g in
    Array.iteri (fun i v -> out.(lo + i) <- v) (f g)
  done;
  out

let scatter_float t f =
  let out = Array.make (Config.organizations t.base) 0. in
  for g = 0 to t.groups - 1 do
    let lo, _ = org_range t g in
    Array.iteri (fun i v -> out.(lo + i) <- v) (f g)
  done;
  out
