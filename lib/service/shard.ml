(* One org-group's scheduling domain: its engine, WAL segment, dedupe
   table, overload detector, and group-commit buffer — everything the
   old single-threaded server owned, minus the sockets.  The router
   (Server) feeds it messages through a mailbox and receives
   completions; in single-shard mode the same code runs inline on the
   router thread.  See DESIGN.md §15. *)

(* Per-service counters aggregated across shards; no-ops unless the
   process enables Obs.Metrics.  [service.shed] lives in Server — the
   router sheds before a feed ever reaches a shard. *)
(* Live consortium membership (federated daemons): [fed.orgs_active] is
   the global k(t) summed over every group's contribution — groups
   publish from their own worker domains, so contributions live in a
   mutex-protected table and each publish re-sums it. *)
let g_fed_orgs_active = Obs.Metrics.gauge "fed.orgs_active"
let fed_active_lock = Mutex.create ()
let fed_active : (int, int) Hashtbl.t = Hashtbl.create 8

let m_dup_acks = Obs.Metrics.counter "service.dup_acks"
let m_degrade = Obs.Metrics.counter "service.degrade_switches"
let m_recover = Obs.Metrics.counter "service.recover_switches"
let m_wal_sync_failures = Obs.Metrics.counter "service.wal_sync_failures"
let m_fsync = Obs.Metrics.counter "service.fsync_total"
let m_acks = Obs.Metrics.counter "service.acks_total"
let g_queue_depth = Obs.Metrics.gauge "service.queue_depth"
let g_ack_ewma = Obs.Metrics.gauge "service.ack_ewma_ms"

(* Durability latency instruments (DESIGN.md §16): how long one WAL
   fsync takes, and how long an accepted feed's ack was held before the
   commit covering it released it. *)
let h_fsync_us = Obs.Metrics.histogram "service.fsync_us"
let h_commit_hold_us = Obs.Metrics.histogram "service.commit_hold_us"

(* --- Mailbox -------------------------------------------------------------
   A mutex-protected queue with a pipe for readiness: the producer writes
   one wake byte on the empty->non-empty transition, the consumer selects
   on the read end (a timed wait — OCaml's Condition has no timeout, and
   group-commit needs deadline wakeups).  Single producer (the router),
   single consumer (one worker domain), but safe for any number. *)
module Mailbox = struct
  type 'a t = {
    q : 'a Queue.t;
    m : Mutex.t;
    rd : Unix.file_descr;
    wr : Unix.file_descr;
  }

  let create () =
    let rd, wr = Unix.pipe () in
    Unix.set_nonblock rd;
    Unix.set_nonblock wr;
    { q = Queue.create (); m = Mutex.create (); rd; wr }

  let push t x =
    let was_empty =
      Mutex.protect t.m (fun () ->
          let e = Queue.is_empty t.q in
          Queue.push x t.q;
          e)
    in
    if was_empty then
      try ignore (Unix.write t.wr (Bytes.make 1 'x') 0 1)
      with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        (* pipe full = consumer already has pending wakeups *)
        ()

  let drain t =
    let buf = Bytes.create 64 in
    (try
       while Unix.read t.rd buf 0 64 > 0 do
         ()
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ());
    Mutex.protect t.m (fun () ->
        let xs = List.of_seq (Queue.to_seq t.q) in
        Queue.clear t.q;
        xs)

  let is_empty t = Mutex.protect t.m (fun () -> Queue.is_empty t.q)
  let wait_fd t = t.rd

  let close t =
    (try Unix.close t.rd with Unix.Unix_error _ -> ());
    try Unix.close t.wr with Unix.Unix_error _ -> ()
end

(* --- Messages ------------------------------------------------------------ *)

type query = Q_status | Q_psi | Q_snapshot | Q_drain of { detail : bool }

type 'tok msg =
  | Feed of { tok : 'tok; req : Protocol.request; t_enq : float }
  | Query of { tok : 'tok; q : query }
  | Tick  (* wake only: commit deadlines, stop checks *)

(* Per-shard slices of the aggregated control responses.  Arrays are
   local to the group's org block; the router scatters them into global
   vectors by the partition's offsets. *)
type status_part = {
  st_now : int;
  st_frontier : int;
  st_accepted : int;
  st_rejected : int;
  st_waiting : int array;
  st_stats : Kernel.Stats.t;
  st_estimator : string;
  st_degraded : bool;
  st_ewma : float;
  st_fsyncs : int;
}

type psi_part = { ps_now : int; ps_psi : int array; ps_parts : int array }

type drain_part = {
  dr_now : int;
  dr_psi : int array;
  dr_parts : int array;
  dr_stats : Kernel.Stats.t;
  dr_schedule : (int * int * int * int * int) list option;
      (* rows already translated to global org/machine ids *)
}

type part =
  | P_status of status_part
  | P_psi of psi_part
  | P_snapshot of (int * string, string) result
  | P_drain of drain_part

type 'tok completion =
  | Ack of { tok : 'tok; resp : Protocol.response }
  | Part of { tok : 'tok; group : int; part : part }

(* --- Shard state --------------------------------------------------------- *)

type 'tok t = {
  group : int;
  part : Partition.t;
  base : Config.t;  (* the global durable identity (WAL headers) *)
  sub : Config.t;  (* this group's induced config (drives the engine) *)
  state_dir : string option;  (* this segment's directory *)
  site_prefix : string;
  snapshot_every : int;
  degrade_to : string option;
  commit_interval : float;  (* seconds; 0 = fsync every pump *)
  commit_max : int;  (* held-ack count that forces an early commit *)
  mutable online : Online.t;
  mutable estimator : string;
  mutable writer : Wal.writer option;
  mutable seq : int;
  mutable records_rev : Wal.record list;
  mutable since_snapshot : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable draining : bool;
  dedupe : (int, int * Protocol.response) Hashtbl.t;
  detector : Overload.t;
  (* group-commit: acks awaiting the fsync that covers their records *)
  mutable held : ('tok * Protocol.response * float) list;  (* newest first *)
  mutable held_n : int;
  mutable first_held : float;
  mutable fsyncs : int;
  (* published for the router's routing/shedding decisions *)
  pub_overloaded : bool Atomic.t;
  pub_retry_ms : int Atomic.t;
  depth : int Atomic.t;  (* mailbox+backlog feeds: router ++, worker -- *)
  (* fairness SLO instruments (DESIGN.md §16): per-org ψ/p gauges under
     global org ids, the group's max |ψ−p| drift, and the estimator's
     Thm 5.6 sample budget — refreshed by the pump, throttled *)
  slo_psi : Obs.Metrics.gauge array;
  slo_p : Obs.Metrics.gauge array;
  slo_drift : Obs.Metrics.gauge;
  slo_budget : Obs.Metrics.gauge;
  (* consortium membership gauge (federated daemons): machines homed in
     this group currently lent to another owner *)
  fed_lent : Obs.Metrics.gauge;
  mutable slo_last : float;
}

let group t = t.group
let sub_config t = t.sub
let fsyncs t = t.fsyncs
let accepted t = t.accepted
let depth t = Atomic.get t.depth
let depth_incr t = Atomic.incr t.depth
let published_overloaded t = Atomic.get t.pub_overloaded
let published_retry_ms t = Atomic.get t.pub_retry_ms

(* --- Global<->local translation ------------------------------------------ *)

let local_event t = function
  | Faults.Event.Fail m -> Faults.Event.Fail (Partition.local_machine t.part m)
  | Faults.Event.Recover m ->
      Faults.Event.Recover (Partition.local_machine t.part m)

(* Endowment events arrive under global ids; the engine speaks the
   group's local ones.  The router guarantees every org and machine the
   event names lives in this group (cross-group endows are rejected at
   admission), so the translation is total. *)
let local_endow_event ~part event =
  let lorg o = Partition.local_org part o in
  let lmachs ms = List.map (Partition.local_machine part) ms in
  match event with
  | Federation.Event.Join { org; machines } ->
      Federation.Event.Join { org = lorg org; machines = lmachs machines }
  | Federation.Event.Leave { org } ->
      Federation.Event.Leave { org = lorg org }
  | Federation.Event.Lend { org; to_org; machines } ->
      Federation.Event.Lend
        { org = lorg org; to_org = lorg to_org; machines = lmachs machines }
  | Federation.Event.Reclaim { org; machines } ->
      Federation.Event.Reclaim { org = lorg org; machines = lmachs machines }

(* --- Replay (recovery and estimator switches) ----------------------------
   Records carry global org/machine ids; feeding the group engine
   translates them.  [Mode] records are skipped (they describe estimator
   switches, not engine input); [dedupe], when given, is rebuilt
   alongside — the cached acks of a deterministic replay are identical
   to the originals. *)
let replay ?dedupe ~part online records =
  let lorg o = Partition.local_org part o in
  let levent = function
    | Faults.Event.Fail m -> Faults.Event.Fail (Partition.local_machine part m)
    | Faults.Event.Recover m ->
        Faults.Event.Recover (Partition.local_machine part m)
  in
  let rec go = function
    | [] -> Ok ()
    | Wal.Submit { seq; org; user; release; size; cid; cseq } :: rest -> (
        match Online.submit online ~org:(lorg org) ~user ~size ~release () with
        | Ok index ->
            (match dedupe with
            | Some tbl when cid <> 0 && cseq > 0 ->
                Hashtbl.replace tbl cid
                  ( cseq,
                    Protocol.Submit_ok
                      { seq; org; index; now = Online.now online } )
            | Some _ | None -> ());
            go rest
        | Error e ->
            Error
              (Printf.sprintf "replay: record %d rejected: %s" seq
                 (Online.error_to_string e)))
    | Wal.Fault { seq; time; event; cid; cseq } :: rest -> (
        match Online.fault online ~time (levent event) with
        | Ok () ->
            (match dedupe with
            | Some tbl when cid <> 0 && cseq > 0 ->
                Hashtbl.replace tbl cid
                  (cseq, Protocol.Fault_ok { seq; now = Online.now online })
            | Some _ | None -> ());
            go rest
        | Error e ->
            Error
              (Printf.sprintf "replay: record %d rejected: %s" seq
                 (Online.error_to_string e)))
    | Wal.Endow { seq; time; event; cid; cseq } :: rest -> (
        match Online.endow online ~time (local_endow_event ~part event) with
        | Ok () ->
            (match dedupe with
            | Some tbl when cid <> 0 && cseq > 0 ->
                Hashtbl.replace tbl cid
                  (cseq, Protocol.Endow_ok { seq; now = Online.now online })
            | Some _ | None -> ());
            go rest
        | Error e ->
            Error
              (Printf.sprintf "replay: record %d rejected: %s" seq
                 (Online.error_to_string e)))
    | Wal.Mode _ :: rest -> go rest
  in
  go records

(* The estimator a record list leaves the shard in: the last Mode record
   wins, the base algorithm otherwise. *)
let final_estimator ~base records =
  List.fold_left
    (fun acc r ->
      match r with Wal.Mode { estimator; _ } -> estimator | _ -> acc)
    base.Config.algorithm records

(* The Thm 5.6 sample budget of the live estimator spec: how many joining
   orders one contribution evaluation draws (0 for exact REF).  Published
   as a gauge so [rand.orders_sampled] can be read against it — the
   ε-budget consumption SLO. *)
let estimator_budget ~spec ~players =
  match Algorithms.Estimator.of_string spec with
  | Ok est ->
      float_of_int
        (Option.value ~default:0
           (Algorithms.Estimator.sample_count est ~players))
  | Error _ -> 0.

(* --- Creation / recovery ------------------------------------------------- *)

let create ~partition ~group ~state_dir ~overload ~degrade_to ~snapshot_every
    ~commit_interval ~commit_max () =
  let ( let* ) = Result.bind in
  let base = Partition.config partition in
  let sub = Partition.sub_config partition group in
  let site_prefix =
    if Partition.groups partition = 1 then ""
    else Wal.segment_site_prefix ~group
  in
  let* records, last_seq =
    match state_dir with
    | None -> Ok ([], 0)
    | Some dir ->
        let* r = Result.map_error Wal.boot_error_to_string (Wal.recover ~dir) in
        let* () =
          match r.Wal.r_config with
          | Some c when not (Config.equal c base) ->
              Error
                (Printf.sprintf
                   "segment %d: stored config disagrees with the service \
                    config"
                   group)
          | Some _ | None -> Ok ()
        in
        Ok (r.Wal.r_records, r.Wal.r_last_seq)
  in
  (* Recovery shortcut for Mode records: build the engine once under the
     final estimator and feed it everything — equivalent by induction,
     each switch was itself defined as "fresh engine + full history". *)
  let estimator = final_estimator ~base records in
  let online =
    Online.create
      (if estimator = sub.Config.algorithm then sub
       else { sub with Config.algorithm = estimator })
  in
  let dedupe = Hashtbl.create 64 in
  let* () = replay ~dedupe ~part:partition online records in
  Obs.Log.info ~component:"wal"
    ~fields:
      [
        ("group", Obs.Json.Int group);
        ("records", Obs.Json.Int (List.length records));
        ("last_seq", Obs.Json.Int last_seq);
        ("estimator", Obs.Json.String estimator);
      ]
    "segment recovered";
  (* Compact on boot: one snapshot covering everything recovered, then a
     fresh WAL.  A crash right here is safe — the snapshot is atomic and
     the old WAL only duplicates records the sequence filter drops. *)
  let* writer =
    match state_dir with
    | None -> Ok None
    | Some dir ->
        let* () =
          if records = [] then Ok ()
          else
            Result.map
              (fun (_ : string) -> ())
              (Wal.write_snapshot ~site_prefix ~dir
                 { Wal.config = base; last_seq; records })
        in
        Result.map Option.some (Wal.create ~site_prefix ~dir ~config:base ())
  in
  let org_lo, org_hi = Partition.org_range partition group in
  let slo_psi =
    Array.init (org_hi - org_lo) (fun i ->
        Obs.Metrics.gauge (Printf.sprintf "fair.psi_org%d" (org_lo + i)))
  in
  let slo_p =
    Array.init (org_hi - org_lo) (fun i ->
        Obs.Metrics.gauge (Printf.sprintf "fair.p_org%d" (org_lo + i)))
  in
  let slo_drift =
    Obs.Metrics.gauge (Printf.sprintf "fair.drift_max_g%d" group)
  in
  let slo_budget =
    Obs.Metrics.gauge (Printf.sprintf "fair.estimator_budget_g%d" group)
  in
  let fed_lent =
    Obs.Metrics.gauge (Printf.sprintf "fed.machines_lent_g%d" group)
  in
  Obs.Metrics.set slo_budget
    (estimator_budget ~spec:estimator ~players:(org_hi - org_lo));
  if base.Config.federated then
    Mutex.protect fed_active_lock (fun () ->
        Hashtbl.replace fed_active group
          (Federation.Event.Ownership.orgs_active (Online.ownership online)));
  Ok
    {
      group;
      part = partition;
      base;
      sub;
      state_dir;
      site_prefix;
      snapshot_every;
      degrade_to;
      commit_interval;
      commit_max;
      online;
      estimator;
      writer;
      seq = last_seq;
      records_rev = List.rev records;
      since_snapshot = 0;
      accepted = List.length (List.filter Wal.is_feed records);
      rejected = 0;
      draining = false;
      dedupe;
      detector =
        Overload.create ~config:overload
          ~now_ms:(fun () -> Obs.Clock.now_s () *. 1000.0)
          ();
      held = [];
      held_n = 0;
      first_held = 0.;
      fsyncs = 0;
      pub_overloaded = Atomic.make false;
      pub_retry_ms = Atomic.make 25;
      depth = Atomic.make 0;
      slo_psi;
      slo_p;
      slo_drift;
      slo_budget;
      fed_lent;
      slo_last = 0.;
    }

let close t =
  Mutex.protect fed_active_lock (fun () -> Hashtbl.remove fed_active t.group);
  Option.iter Wal.close t.writer;
  t.writer <- None

(* --- Snapshot / compaction ----------------------------------------------- *)

let do_snapshot t =
  match t.state_dir with
  | None -> Error "no state directory (daemon is ephemeral)"
  | Some dir -> (
      let snapshot =
        { Wal.config = t.base; last_seq = t.seq; records = List.rev t.records_rev }
      in
      match Wal.write_snapshot ~site_prefix:t.site_prefix ~dir snapshot with
      | Error _ as e -> e
      | Ok path -> (
          (* Compact: every record is covered by the snapshot now. *)
          Option.iter Wal.close t.writer;
          t.writer <- None;
          Chaos.Fs.point (t.site_prefix ^ "before-wal-reset");
          match Wal.create ~site_prefix:t.site_prefix ~dir ~config:t.base () with
          | Error _ as e -> e
          | Ok w ->
              t.writer <- Some w;
              t.since_snapshot <- 0;
              Chaos.Fs.point (t.site_prefix ^ "after-wal-reset");
              Ok path))

(* --- Group commit --------------------------------------------------------
   Acks of accepted feeds are held until one fsync covers the whole
   batch.  With [commit_interval = 0] every pump that appended syncs
   immediately (the pre-sharding behaviour: one fsync per select round);
   with an interval, appends accumulate until the deadline or
   [commit_max] held acks, amortizing the fsync across them.  A sync
   failure answers the held batch with wal-error and keeps the records
   buffered — the next successful commit repairs and lands them. *)

let hold t tok resp t_enq =
  if t.held_n = 0 then t.first_held <- t_enq;
  (* first_held is set from the enqueue time of the oldest held ack, so a
     commit interval bounds the *total* added latency, not just the
     server-side part *)
  t.held <- (tok, resp, t_enq) :: t.held;
  t.held_n <- t.held_n + 1

let commit_due t ~now ~force =
  let wal_pending =
    match t.writer with Some w -> Wal.pending w | None -> false
  in
  (t.held_n > 0 || wal_pending)
  && (force
     || t.commit_interval <= 0.
     || t.held_n >= t.commit_max
     || (t.held_n > 0 && now -. t.first_held >= t.commit_interval))

(* Seconds until the commit deadline, when acks are held; [None] = no
   deadline pending. *)
let commit_deadline t ~now =
  if t.held_n = 0 || t.commit_interval <= 0. then None
  else Some (Float.max 0. (t.first_held +. t.commit_interval -. now))

(* Returns the completions this commit releases (in request order). *)
let commit t ~now ~force =
  if not (commit_due t ~now ~force) then []
  else begin
    let sync_result =
      match t.writer with
      | Some w when Wal.pending w ->
          let r =
            Obs.Trace.span ~cat:"service"
              ~args:
                [
                  ("group", Obs.Json.Int t.group);
                  ("acks", Obs.Json.Int t.held_n);
                ]
              "wal.commit"
              (fun () ->
                let t0 = Obs.Clock.now_ns () in
                let r = Wal.sync w in
                Obs.Metrics.observe h_fsync_us (Obs.Clock.elapsed t0 *. 1e6);
                r)
          in
          (match r with
          | Error _ -> Obs.Metrics.incr m_wal_sync_failures
          | Ok () ->
              t.fsyncs <- t.fsyncs + 1;
              Obs.Metrics.incr m_fsync);
          r
      | Some _ | None -> Ok ()
    in
    let held = List.rev t.held in
    t.held <- [];
    t.held_n <- 0;
    List.map
      (fun (tok, resp, t_enq) ->
        Overload.observe_ack t.detector ~latency_ms:((now -. t_enq) *. 1000.);
        Obs.Metrics.incr m_acks;
        Obs.Metrics.observe h_commit_hold_us (Float.max 0. (now -. t_enq) *. 1e6);
        let resp =
          match sync_result with
          | Ok () -> resp
          | Error msg ->
              Protocol.Error
                { code = Protocol.Wal_error; msg; retry_after_ms = None }
        in
        Ack { tok; resp })
      held
  end

(* --- Feed processing ----------------------------------------------------- *)

let code_of_online_error = function
  | Online.Drained -> Protocol.Draining
  | _ -> Protocol.Bad_request

let observe_and_post t ~post ~now ~t_enq tok resp =
  Overload.observe_ack t.detector ~latency_ms:((now -. t_enq) *. 1000.);
  Obs.Metrics.incr m_acks;
  post (Ack { tok; resp })

let reject t ~post ~now ~t_enq ?retry_after_ms tok code msg =
  t.rejected <- t.rejected + 1;
  observe_and_post t ~post ~now ~t_enq tok
    (Protocol.Error { code; msg; retry_after_ms })

(* At-most-once retransmission.  A feed carrying the (cid, cseq) of an
   already-applied one is answered from the cache — held like a fresh
   ack, so a cached OK is still gated on the commit that covers the
   original record (a sync failure keeps the record's bytes pending; the
   cached ack must not outrun them to the client). *)
let dedupe_hit t ~cid ~cseq =
  if cid = 0 then None
  else
    match Hashtbl.find_opt t.dedupe cid with
    | Some (last, resp) when cseq = last ->
        Obs.Metrics.incr m_dup_acks;
        Some (`Cached resp)
    | Some (last, _) when cseq < last && cseq > 0 -> Some (`Stale last)
    | Some _ | None -> None

let remember t ~cid ~cseq resp =
  if cid <> 0 && cseq > 0 then Hashtbl.replace t.dedupe cid (cseq, resp)

let feed_inner t ~post ~now tok (req : Protocol.request) ~t_enq =
  match req with
  | Protocol.Submit { org; user; release; size; cid; cseq; trace = _ } -> (
      match dedupe_hit t ~cid ~cseq with
      | Some (`Cached resp) -> hold t tok resp t_enq
      | Some (`Stale last) ->
          reject t ~post ~now ~t_enq tok Protocol.Bad_request
            (Printf.sprintf "stale cseq %d (last applied %d)" cseq last)
      | None -> (
          if t.draining then
            reject t ~post ~now ~t_enq tok Protocol.Draining
              "daemon is draining"
          else
            let lorg = Partition.local_org t.part org in
            match Online.check_submit t.online ~org:lorg ~size ~release with
            | Error e ->
                reject t ~post ~now ~t_enq tok (code_of_online_error e)
                  (Online.error_to_string e)
            | Ok () -> (
                let seq = t.seq + 1 in
                t.seq <- seq;
                let record =
                  Wal.Submit { seq; org; user; release; size; cid; cseq }
                in
                Option.iter (fun w -> Wal.append w record) t.writer;
                t.records_rev <- record :: t.records_rev;
                t.accepted <- t.accepted + 1;
                t.since_snapshot <- t.since_snapshot + 1;
                match
                  Online.submit t.online ~org:lorg ~user ~size ~release ()
                with
                | Ok index ->
                    let resp =
                      Protocol.Submit_ok
                        { seq; org; index; now = Online.now t.online }
                    in
                    remember t ~cid ~cseq resp;
                    hold t tok resp t_enq
                | Error e ->
                    (* unreachable after check_submit; fail loudly *)
                    observe_and_post t ~post ~now ~t_enq tok
                      (Protocol.Error
                         {
                           code = Protocol.Bad_request;
                           msg = Online.error_to_string e;
                           retry_after_ms = None;
                         }))))
  | Protocol.Fault { time; event; cid; cseq; trace = _ } -> (
      match dedupe_hit t ~cid ~cseq with
      | Some (`Cached resp) -> hold t tok resp t_enq
      | Some (`Stale last) ->
          reject t ~post ~now ~t_enq tok Protocol.Bad_request
            (Printf.sprintf "stale cseq %d (last applied %d)" cseq last)
      | None -> (
          if t.draining then
            reject t ~post ~now ~t_enq tok Protocol.Draining
              "daemon is draining"
          else
            let lev = local_event t event in
            match Online.check_fault t.online ~time lev with
            | Error e ->
                reject t ~post ~now ~t_enq tok (code_of_online_error e)
                  (Online.error_to_string e)
            | Ok () -> (
                let seq = t.seq + 1 in
                t.seq <- seq;
                let record = Wal.Fault { seq; time; event; cid; cseq } in
                Option.iter (fun w -> Wal.append w record) t.writer;
                t.records_rev <- record :: t.records_rev;
                t.accepted <- t.accepted + 1;
                t.since_snapshot <- t.since_snapshot + 1;
                match Online.fault t.online ~time lev with
                | Ok () ->
                    let resp =
                      Protocol.Fault_ok { seq; now = Online.now t.online }
                    in
                    remember t ~cid ~cseq resp;
                    hold t tok resp t_enq
                | Error e ->
                    observe_and_post t ~post ~now ~t_enq tok
                      (Protocol.Error
                         {
                           code = Protocol.Bad_request;
                           msg = Online.error_to_string e;
                           retry_after_ms = None;
                         }))))
  | Protocol.Endow { time; event; cid; cseq; trace = _ } -> (
      match dedupe_hit t ~cid ~cseq with
      | Some (`Cached resp) -> hold t tok resp t_enq
      | Some (`Stale last) ->
          reject t ~post ~now ~t_enq tok Protocol.Bad_request
            (Printf.sprintf "stale cseq %d (last applied %d)" cseq last)
      | None -> (
          if t.draining then
            reject t ~post ~now ~t_enq tok Protocol.Draining
              "daemon is draining"
          else
            let lev = local_endow_event ~part:t.part event in
            match Online.check_endow t.online ~time lev with
            | Error e ->
                reject t ~post ~now ~t_enq tok (code_of_online_error e)
                  (Online.error_to_string e)
            | Ok () -> (
                let seq = t.seq + 1 in
                t.seq <- seq;
                let record = Wal.Endow { seq; time; event; cid; cseq } in
                Option.iter (fun w -> Wal.append w record) t.writer;
                t.records_rev <- record :: t.records_rev;
                t.accepted <- t.accepted + 1;
                t.since_snapshot <- t.since_snapshot + 1;
                match Online.endow t.online ~time lev with
                | Ok () ->
                    let resp =
                      Protocol.Endow_ok { seq; now = Online.now t.online }
                    in
                    remember t ~cid ~cseq resp;
                    hold t tok resp t_enq
                | Error e ->
                    observe_and_post t ~post ~now ~t_enq tok
                      (Protocol.Error
                         {
                           code = Protocol.Bad_request;
                           msg = Online.error_to_string e;
                           retry_after_ms = None;
                         }))))
  | Protocol.Status | Protocol.Psi | Protocol.Snapshot | Protocol.Drain _
  | Protocol.Metrics | Protocol.Trace _ ->
      (* control requests travel as [Query], never as [Feed] *)
      assert false

(* The shard-side leg of a request's trace: the feed runs inside a span
   on the worker domain carrying the client-issued trace id, so the
   merged dump correlates the router's admission instant with the engine
   work it caused, across the domain boundary. *)
let feed t ~post ~now tok (req : Protocol.request) ~t_enq =
  if not (Obs.Trace.enabled ()) then feed_inner t ~post ~now tok req ~t_enq
  else begin
    let trace_id =
      match req with
      | Protocol.Submit { trace; _ }
      | Protocol.Fault { trace; _ }
      | Protocol.Endow { trace; _ } ->
          trace
      | _ -> 0
    in
    let args =
      ("group", Obs.Json.Int t.group)
      :: (if trace_id = 0 then [] else [ ("trace", Obs.Json.Int trace_id) ])
    in
    Obs.Trace.span ~cat:"service" ~args "shard.feed" (fun () ->
        feed_inner t ~post ~now tok req ~t_enq)
  end

(* --- Control queries ------------------------------------------------------ *)

let status_part t =
  {
    st_now = Online.now t.online;
    st_frontier = Online.frontier t.online;
    st_accepted = t.accepted;
    st_rejected = t.rejected;
    st_waiting = Online.queue_depths t.online;
    st_stats = Kernel.Stats.copy (Online.stats t.online);
    st_estimator = t.estimator;
    st_degraded = t.estimator <> t.base.Config.algorithm;
    st_ewma = Overload.ack_ewma_ms t.detector;
    st_fsyncs = t.fsyncs;
  }

let schedule_rows t =
  Core.Schedule.placements (Online.schedule t.online)
  |> List.map (fun (p : Core.Schedule.placement) ->
         ( Partition.global_org t.part ~group:t.group
             p.Core.Schedule.job.Core.Job.org,
           p.Core.Schedule.job.Core.Job.index,
           p.Core.Schedule.start,
           Partition.global_machine t.part ~group:t.group
             p.Core.Schedule.machine,
           p.Core.Schedule.duration ))

let drain_part t ~detail =
  {
    dr_now = Online.now t.online;
    dr_psi = Online.psi_scaled t.online;
    dr_parts = Online.parts t.online;
    dr_stats = Kernel.Stats.copy (Online.stats t.online);
    dr_schedule = (if detail then Some (schedule_rows t) else None);
  }

let query t ~post ~now tok q =
  let part p = post (Part { tok; group = t.group; part = p }) in
  match q with
  | Q_status -> part (P_status (status_part t))
  | Q_psi ->
      part
        (P_psi
           {
             ps_now = Online.now t.online;
             ps_psi = Online.psi_scaled t.online;
             ps_parts = Online.parts t.online;
           })
  | Q_snapshot ->
      (* the snapshot persists any still-buffered records, so the held
         acks it covers are released right after *)
      let r =
        Result.map (fun path -> (t.seq, path)) (do_snapshot t)
      in
      List.iter post (commit t ~now ~force:true);
      part (P_snapshot r)
  | Q_drain { detail } ->
      if not t.draining then begin
        t.draining <- true;
        Online.drain t.online;
        (match t.state_dir with
        | None -> List.iter post (commit t ~now ~force:true)
        | Some _ -> (
            match do_snapshot t with
            | Ok _ -> List.iter post (commit t ~now ~force:true)
            | Error msg ->
                Obs.Log.error ~component:"shard"
                  ~fields:[ ("group", Obs.Json.Int t.group) ]
                  "final snapshot failed: %s" msg;
                List.iter post (commit t ~now ~force:true)))
      end;
      part (P_drain (drain_part t ~detail))

(* --- Degraded mode -------------------------------------------------------
   Switch the live estimator by rebuild-and-replay: log a Mode record,
   construct a fresh engine under the new algorithm, and feed it every
   accepted record.  Kernel determinism makes this exactly "a fresh
   session with the new estimator given the same history" — which is
   also precisely what crash recovery reproduces from the log, so a
   crash at any point around the switch stays bit-identical. *)

let switch_estimator t spec =
  let seq = t.seq + 1 in
  t.seq <- seq;
  let record = Wal.Mode { seq; estimator = spec } in
  Option.iter (fun w -> Wal.append w record) t.writer;
  t.records_rev <- record :: t.records_rev;
  t.since_snapshot <- t.since_snapshot + 1;
  let online = Online.create { t.sub with Config.algorithm = spec } in
  match replay ~part:t.part online (List.rev t.records_rev) with
  | Ok () ->
      t.online <- online;
      t.estimator <- spec;
      true
  | Error msg ->
      (* Accepted records cannot be rejected on replay (determinism);
         reaching here is an invariant violation.  Keep the old engine
         rather than serve from a half-fed one. *)
      Obs.Log.error ~component:"shard"
        ~fields:
          [
            ("group", Obs.Json.Int t.group);
            ("estimator", Obs.Json.String spec);
          ]
        "estimator switch failed: %s" msg;
      false

let maybe_switch t =
  match t.degrade_to with
  | None -> ()
  | Some spec ->
      if not t.draining then begin
        match Overload.level t.detector with
        | Overload.Overloaded when t.estimator <> spec ->
            if switch_estimator t spec then begin
              Obs.Metrics.incr m_degrade;
              Obs.Metrics.set t.slo_budget
                (estimator_budget ~spec
                   ~players:(Config.organizations t.sub));
              Obs.Log.warn ~component:"shard"
                ~fields:
                  [
                    ("group", Obs.Json.Int t.group);
                    ("event", Obs.Json.String "degrade");
                    ("estimator", Obs.Json.String spec);
                  ]
                "overload: degrading estimator to %s" spec
            end
        | Overload.Normal when t.estimator <> t.base.Config.algorithm ->
            if switch_estimator t t.base.Config.algorithm then begin
              Obs.Metrics.incr m_recover;
              Obs.Metrics.set t.slo_budget
                (estimator_budget ~spec:t.estimator
                   ~players:(Config.organizations t.sub));
              Obs.Log.warn ~component:"shard"
                ~fields:
                  [
                    ("group", Obs.Json.Int t.group);
                    ("event", Obs.Json.String "recover");
                    ("estimator", Obs.Json.String t.estimator);
                  ]
                "recovered: estimator back to %s" t.estimator
            end
        | Overload.Overloaded | Overload.Normal -> ()
      end

(* --- Worker: one domain (or the router thread) executing >= 1 shards ----- *)

type 'tok worker = {
  w_id : int;
  w_shards : (int * 'tok t) list;  (* group id -> shard, ascending *)
  w_mb : (int * 'tok msg) Mailbox.t;  (* messages tagged with group *)
  w_backlog : (int * 'tok msg) Queue.t;
  w_drain_batch : int;
  w_cap : int;  (* per-group admission bound, for occupancy observation *)
  w_stop : bool Atomic.t;
  w_post : 'tok completion -> unit;
  mutable w_domain : unit Domain.t option;
}

let make_worker ~id ~shards ~drain_batch ~cap ~post =
  {
    w_id = id;
    w_shards = shards;
    w_mb = Mailbox.create ();
    w_backlog = Queue.create ();
    w_drain_batch = drain_batch;
    w_cap = cap;
    w_stop = Atomic.make false;
    w_post = post;
    w_domain = None;
  }

let worker_shard w g = List.assoc g w.w_shards
let post_msg w ~group msg = Mailbox.push w.w_mb (group, msg)

(* Fairness SLO publication (DESIGN.md §16): copy the engine's live
   ψ/p vectors into the per-org gauges and refresh the group's max
   drift.  Scaled ints halve to utilities (Online keeps 2·value to stay
   integral); throttled so a busy pump doesn't pay the gauge stores on
   every round. *)
let publish_slo t ~now =
  if Obs.Metrics.enabled () && now -. t.slo_last >= 0.25 then begin
    t.slo_last <- now;
    let psi = Online.psi_scaled t.online in
    let parts = Online.parts t.online in
    let drift = ref 0. in
    Array.iteri
      (fun i s ->
        let p = parts.(i) in
        Obs.Metrics.set t.slo_psi.(i) (float_of_int s /. 2.);
        Obs.Metrics.set t.slo_p.(i) (float_of_int p /. 2.);
        drift := Float.max !drift (float_of_int (abs (s - p)) /. 2.))
      psi;
    Obs.Metrics.set t.slo_drift !drift;
    if t.base.Config.federated then begin
      let ownership = Online.ownership t.online in
      let lent = ref 0 in
      for u = 0 to Federation.Event.Ownership.orgs ownership - 1 do
        lent := !lent + Federation.Event.Ownership.lent_out ownership u
      done;
      Obs.Metrics.set t.fed_lent (float_of_int !lent);
      let active = Federation.Event.Ownership.orgs_active ownership in
      Mutex.protect fed_active_lock (fun () ->
          Hashtbl.replace fed_active t.group active;
          let total = Hashtbl.fold (fun _ v acc -> acc + v) fed_active 0 in
          Obs.Metrics.set g_fed_orgs_active (float_of_int total))
    end
  end

(* One processing round: pull queued messages, feed at most
   [drain_batch] engine entries (control queries don't consume the
   budget, matching the pre-sharding server), run the group-commit
   policy, compact, re-evaluate overload.  Runs on the worker domain —
   or inline on the router thread when the daemon is single-shard. *)
let pump w =
  List.iter (fun m -> Queue.push m w.w_backlog) (Mailbox.drain w.w_mb);
  let now = Unix.gettimeofday () in
  let feeds = ref 0 in
  while !feeds < w.w_drain_batch && not (Queue.is_empty w.w_backlog) do
    let g, msg = Queue.pop w.w_backlog in
    match msg with
    | Feed { tok; req; t_enq } ->
        let sh = worker_shard w g in
        Atomic.decr sh.depth;
        feed sh ~post:w.w_post ~now tok req ~t_enq;
        incr feeds
    | Query { tok; q } -> query (worker_shard w g) ~post:w.w_post ~now tok q
    | Tick -> ()
  done;
  List.iter
    (fun (_, sh) ->
      List.iter w.w_post (commit sh ~now ~force:false);
      (* automatic compaction once enough records accumulated — but not
         while acks are held: the WAL reset below a held batch would
         drop its buffered bytes before snapshot covers them *)
      if
        sh.state_dir <> None && sh.snapshot_every > 0
        && sh.since_snapshot >= sh.snapshot_every
        && sh.held_n = 0
      then (
        match do_snapshot sh with
        | Ok _ -> ()
        | Error msg ->
            Obs.Log.error ~component:"shard"
              ~fields:[ ("group", Obs.Json.Int sh.group) ]
              "auto-snapshot: %s" msg);
      maybe_switch sh;
      publish_slo sh ~now;
      let depth = Atomic.get sh.depth in
      Overload.observe_queue sh.detector ~depth ~cap:w.w_cap;
      Atomic.set sh.pub_overloaded
        (Overload.level sh.detector = Overload.Overloaded);
      Atomic.set sh.pub_retry_ms (Overload.retry_after_ms sh.detector);
      Obs.Metrics.set g_queue_depth (float_of_int depth);
      Obs.Metrics.set g_ack_ewma (Overload.ack_ewma_ms sh.detector))
    w.w_shards

(* Seconds the worker may sleep before something needs it: 0 when work
   is queued, else the nearest commit deadline, else a 1 s idle tick
   (the overload detector recovers by observing calm). *)
let wait_timeout w =
  if not (Queue.is_empty w.w_backlog) then 0.
  else
    let now = Unix.gettimeofday () in
    List.fold_left
      (fun acc (_, sh) ->
        match commit_deadline sh ~now with
        | Some d -> Float.min acc d
        | None -> acc)
      1.0 w.w_shards

let worker_loop w =
  (* own Chrome trace lane per worker domain; lane 1 is the router *)
  Obs.Trace.set_pid ~name:(Printf.sprintf "shard-worker-%d" w.w_id) (2 + w.w_id);
  try
    while not (Atomic.get w.w_stop) do
      let timeout = wait_timeout w in
      (if timeout > 0. then
         match Unix.select [ Mailbox.wait_fd w.w_mb ] [] [] timeout with
         | _ -> ()
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      pump w
    done
  with e ->
    (* a dead shard would hang its org-groups' clients silently; take the
       daemon down loudly instead *)
    Obs.Log.error ~component:"shard"
      ~fields:[ ("worker", Obs.Json.Int w.w_id) ]
      "shard worker %d died: %s" w.w_id (Printexc.to_string e);
    Unix._exit 2

let start_worker w = w.w_domain <- Some (Domain.spawn (fun () -> worker_loop w))

let stop_worker w =
  Atomic.set w.w_stop true;
  Mailbox.push w.w_mb (0, Tick);
  (match w.w_domain with Some d -> Domain.join d | None -> ());
  w.w_domain <- None;
  Mailbox.close w.w_mb;
  List.iter (fun (_, sh) -> close sh) w.w_shards
