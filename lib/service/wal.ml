type record =
  | Submit of {
      seq : int;
      org : int;
      user : int;
      release : int;
      size : int;
      cid : int;
      cseq : int;
    }
  | Fault of { seq : int; time : int; event : Faults.Event.t; cid : int; cseq : int }
  | Endow of {
      seq : int;
      time : int;
      event : Federation.Event.t;
      cid : int;
      cseq : int;
    }
  | Mode of { seq : int; estimator : string }

let seq_of = function
  | Submit { seq; _ } | Fault { seq; _ } | Endow { seq; _ } | Mode { seq; _ }
    ->
      seq

let is_feed = function
  | Submit _ | Fault _ | Endow _ -> true
  | Mode _ -> false

open Obs.Json

let ( let* ) = Result.bind

(* cid/cseq are omitted when zero so logs written before idempotent
   retransmission existed (and anonymous clients) stay byte-compatible. *)
let client_fields cid cseq =
  if cid = 0 && cseq = 0 then []
  else [ ("cid", Int cid); ("cseq", Int cseq) ]

let record_to_json = function
  | Submit { seq; org; user; release; size; cid; cseq } ->
      Obj
        ([
           ("rec", String "submit");
           ("seq", Int seq);
           ("org", Int org);
           ("user", Int user);
           ("release", Int release);
           ("size", Int size);
         ]
        @ client_fields cid cseq)
  | Fault { seq; time; event; cid; cseq } ->
      let kind, machine =
        match event with
        | Faults.Event.Fail m -> ("fail", m)
        | Faults.Event.Recover m -> ("recover", m)
      in
      Obj
        ([
           ("rec", String "fault");
           ("seq", Int seq);
           ("time", Int time);
           ("kind", String kind);
           ("machine", Int machine);
         ]
        @ client_fields cid cseq)
  | Endow { seq; time; event; cid; cseq } ->
      (* Same event encoding as the socket (Protocol.endow_event_fields)
         so the log replays exactly what was fed. *)
      Obj
        ((("rec", String "endow") :: ("seq", Int seq) :: ("time", Int time)
         :: Protocol.endow_event_fields event)
        @ client_fields cid cseq)
  | Mode { seq; estimator } ->
      Obj
        [
          ("rec", String "mode");
          ("seq", Int seq);
          ("estimator", String estimator);
        ]

let int_field j name =
  match member j name with
  | Some (Int v) -> Ok v
  | Some _ -> Error (Printf.sprintf "WAL field %S must be an integer" name)
  | None -> Error (Printf.sprintf "WAL field %S missing" name)

let opt_int_field j name ~default =
  match member j name with
  | Some (Int v) -> Ok v
  | Some _ -> Error (Printf.sprintf "WAL field %S must be an integer" name)
  | None -> Ok default

let record_of_json j =
  match member j "rec" with
  | Some (String "submit") ->
      let* seq = int_field j "seq" in
      let* org = int_field j "org" in
      let* user = int_field j "user" in
      let* release = int_field j "release" in
      let* size = int_field j "size" in
      let* cid = opt_int_field j "cid" ~default:0 in
      let* cseq = opt_int_field j "cseq" ~default:0 in
      Ok (Submit { seq; org; user; release; size; cid; cseq })
  | Some (String "fault") ->
      let* seq = int_field j "seq" in
      let* time = int_field j "time" in
      let* machine = int_field j "machine" in
      let* cid = opt_int_field j "cid" ~default:0 in
      let* cseq = opt_int_field j "cseq" ~default:0 in
      let* event =
        match member j "kind" with
        | Some (String "fail") -> Ok (Faults.Event.Fail machine)
        | Some (String "recover") -> Ok (Faults.Event.Recover machine)
        | _ -> Error "WAL field \"kind\" must be \"fail\" or \"recover\""
      in
      Ok (Fault { seq; time; event; cid; cseq })
  | Some (String "endow") ->
      let* seq = int_field j "seq" in
      let* time = int_field j "time" in
      let* event = Protocol.endow_event_of_json j in
      let* cid = opt_int_field j "cid" ~default:0 in
      let* cseq = opt_int_field j "cseq" ~default:0 in
      Ok (Endow { seq; time; event; cid; cseq })
  | Some (String "mode") ->
      let* seq = int_field j "seq" in
      let* estimator =
        match member j "estimator" with
        | Some (String s) when s <> "" -> Ok s
        | _ -> Error "WAL field \"estimator\" must be a non-empty string"
      in
      Ok (Mode { seq; estimator })
  | _ -> Error "WAL record missing \"rec\" discriminator"

let wal_path ~dir = Filename.concat dir "wal.ndjson"
let snapshot_path ~dir = Filename.concat dir "snapshot.json"

(* --- Segment layout (sharded state dirs) --------------------------------- *)

(* A single-group daemon keeps the flat pre-sharding layout (wal.ndjson +
   snapshot.json directly under the state dir); a multi-group daemon gives
   each org-group its own segment subdirectory wal-<g>/ with the same two
   files inside.  The layout itself says which world we are in — recovery
   must know before it can read any config. *)

let segment_dir ~dir ~group = Filename.concat dir (Printf.sprintf "wal-%d" group)

let segment_site_prefix ~group = Printf.sprintf "g%d/" group

let segments ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      let groups =
        Array.to_list entries
        |> List.filter_map (fun name ->
               match
                 if String.length name > 4 && String.sub name 0 4 = "wal-" then
                   int_of_string_opt
                     (String.sub name 4 (String.length name - 4))
                 else None
               with
               | Some g
                 when g >= 0 && Sys.is_directory (Filename.concat dir name) ->
                   Some g
               | _ -> None)
      in
      List.sort compare groups

(* --- Typed boot errors --------------------------------------------------- *)

type corruption = {
  c_file : string;
  c_line : int;
  c_offset : int;
  c_reason : string;
}

type boot_error =
  | Io of string
  | Corrupt of corruption
  | Mismatch of string

let boot_error_to_string = function
  | Io msg -> msg
  | Corrupt { c_file; c_line; c_offset; c_reason } ->
      Printf.sprintf "%s: corrupt at line %d (byte offset %d): %s" c_file
        c_line c_offset c_reason
  | Mismatch msg -> msg

(* --- Writing ------------------------------------------------------------- *)

(* [durable_len] is the file length as of the last successful fsync;
   [file_len] tracks every byte we have handed to write(2), successful or
   not.  When they disagree a previous sync died partway (ENOSPC, EIO, a
   torn write) and the tail of the file may hold half a record — sync
   truncates back to [durable_len] before rewriting the retained buffer,
   so retrying a failed batch can never interleave old half-lines with
   new ones. *)
type writer = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable durable_len : int;
  mutable file_len : int;
  prefix : string;
      (* chaos site/point prefix, e.g. "g1/" — lets a fault plan target
         one shard's segment while the others stay healthy *)
}

let wal_magic = "fairsched_wal"

let header_json config =
  Obj [ (wal_magic, Int 1); ("config", Config.to_json config) ]

let write_fully ~site fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n = Chaos.Fs.write ~site fd bytes off (len - off) in
      go (off + n)
  in
  go 0

(* Like [write_fully] but records progress in [w.file_len] per chunk, so
   a failure mid-loop still knows how many bytes may have landed. *)
let write_tracked ~site w s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then begin
      let n = Chaos.Fs.write ~site w.fd bytes off (len - off) in
      w.file_len <- w.file_len + n;
      go (off + n)
    end
  in
  go 0

let protect_sys f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let create ?(site_prefix = "") ~dir ~config () =
  protect_sys (fun () ->
      let path = wal_path ~dir in
      let fd =
        Chaos.Fs.openfile ~site:(site_prefix ^ "wal-open") path
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
          0o644
      in
      let header = to_string (header_json config) ^ "\n" in
      write_fully ~site:(site_prefix ^ "wal-header") fd header;
      Chaos.Fs.fsync ~site:(site_prefix ^ "wal-fsync") fd;
      let len = String.length header in
      {
        fd;
        buf = Buffer.create 4096;
        durable_len = len;
        file_len = len;
        prefix = site_prefix;
      })

let append w record =
  to_buffer w.buf (record_to_json record);
  Buffer.add_char w.buf '\n'

let pending w = Buffer.length w.buf > 0 || w.file_len > w.durable_len

let sync w =
  protect_sys (fun () ->
      if pending w then begin
        if w.file_len > w.durable_len then begin
          (* Repair a torn append from a previously failed sync. *)
          Chaos.Fs.ftruncate ~site:(w.prefix ^ "wal-truncate") w.fd
            w.durable_len;
          ignore (Unix.LargeFile.lseek w.fd (Int64.of_int w.durable_len) Unix.SEEK_SET);
          w.file_len <- w.durable_len
        end;
        Chaos.Fs.point (w.prefix ^ "before-wal-append");
        write_tracked ~site:(w.prefix ^ "wal-append") w (Buffer.contents w.buf);
        Chaos.Fs.point (w.prefix ^ "after-wal-append");
        Chaos.Fs.fsync ~site:(w.prefix ^ "wal-fsync") w.fd;
        w.durable_len <- w.file_len;
        Buffer.clear w.buf;
        Chaos.Fs.point (w.prefix ^ "after-wal-fsync")
      end)

let close w =
  (match sync w with Ok () | Error _ -> ());
  try Unix.close w.fd with Unix.Unix_error _ -> ()

(* --- Snapshots ----------------------------------------------------------- *)

type snapshot = { config : Config.t; last_seq : int; records : record list }

let snapshot_json s =
  Obj
    [
      ("fairsched_snapshot", Int 1);
      ("config", Config.to_json s.config);
      ("last_seq", Int s.last_seq);
      ("records", List (List.map record_to_json s.records));
    ]

let snapshot_of_json j =
  let* config =
    match member j "config" with
    | Some cj -> Config.of_json cj
    | None -> Error "snapshot missing \"config\""
  in
  let* last_seq = int_field j "last_seq" in
  let* records =
    match member j "records" with
    | Some (List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest ->
              let* r = record_of_json item in
              go (r :: acc) rest
        in
        go [] items
    | Some _ | None -> Error "snapshot missing \"records\""
  in
  Ok { config; last_seq; records }

let write_snapshot ?(site_prefix = "") ~dir s =
  protect_sys (fun () ->
      let path = snapshot_path ~dir in
      let tmp = path ^ ".tmp" in
      let fd =
        Chaos.Fs.openfile ~site:(site_prefix ^ "snap-open") tmp
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
          0o644
      in
      write_fully ~site:(site_prefix ^ "snap-write") fd
        (to_string (snapshot_json s) ^ "\n");
      Chaos.Fs.fsync ~site:(site_prefix ^ "snap-fsync") fd;
      Unix.close fd;
      Chaos.Fs.point (site_prefix ^ "after-snapshot-write");
      Chaos.Fs.point (site_prefix ^ "before-snapshot-rename");
      Chaos.Fs.rename ~site:(site_prefix ^ "snap-rename") tmp path;
      Chaos.Fs.point (site_prefix ^ "after-snapshot-rename");
      (* Persist the rename itself. *)
      (match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
      | dfd ->
          (try Chaos.Fs.fsync ~site:(site_prefix ^ "dir-fsync") dfd
           with Unix.Unix_error _ -> ());
          Unix.close dfd
      | exception Unix.Unix_error _ -> ());
      path)

(* --- Recovery ------------------------------------------------------------ *)

type recovery = {
  r_config : Config.t option;
  r_records : record list;
  r_last_seq : int;
}

(* One physical line: text without the newline, the byte offset of its
   first character, and whether a terminating '\n' was present (a torn
   final write usually lacks one). *)
type raw_line = { l_text : string; l_offset : int; l_terminated : bool }

let read_file path =
  protect_sys (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let split_lines s =
  let n = String.length s in
  let rec go acc start =
    if start >= n then List.rev acc
    else
      match String.index_from_opt s start '\n' with
      | None ->
          List.rev
            ({ l_text = String.sub s start (n - start); l_offset = start;
               l_terminated = false }
            :: acc)
      | Some i ->
          go
            ({ l_text = String.sub s start (i - start); l_offset = start;
               l_terminated = true }
            :: acc)
            (i + 1)
  in
  go [] 0

let corrupt file (line : raw_line) lineno reason =
  Corrupt { c_file = file; c_line = lineno; c_offset = line.l_offset;
            c_reason = reason }

(* Parse the record lines of a WAL body.  The final line may be torn
   (crash mid-append): if it fails to parse it is dropped and reported.
   Any earlier failure, or a sequence number that does not strictly
   increase, refuses with a typed corruption naming the line.  Sequence
   monotonicity is what turns a duplicated or reordered line — which is
   individually well-formed JSON — into a detectable error. *)
let parse_records ~file ~first_lineno lines =
  let n = List.length lines in
  let rec go i last_seq acc = function
    | [] -> Ok (List.rev acc, None)
    | (line : raw_line) :: rest -> (
        let lineno = first_lineno + i in
        let parsed =
          let* j = of_string line.l_text in
          record_of_json j
        in
        match parsed with
        | Ok r ->
            let seq = seq_of r in
            if seq <= last_seq then
              Error
                (corrupt file line lineno
                   (Printf.sprintf
                      "sequence number %d not above previous %d (duplicated \
                       or reordered record)"
                      seq last_seq))
            else go (i + 1) seq (r :: acc) rest
        | Error e ->
            if i = n - 1 && line.l_text <> "" then
              (* Torn tail: dropped, surfaced for diagnostics. *)
              Ok
                ( List.rev acc,
                  Some (lineno, line.l_offset, String.length line.l_text) )
            else Error (corrupt file line lineno e))
  in
  go 0 min_int [] lines

let read_wal path =
  let* text = Result.map_error (fun m -> Io m) (read_file path) in
  match split_lines text with
  | [] ->
      Error
        (Corrupt
           { c_file = path; c_line = 1; c_offset = 0;
             c_reason = "empty WAL (missing header)" })
  | header :: body ->
      let* config =
        match of_string header.l_text with
        | Ok hj -> (
            match (member hj wal_magic, member hj "config") with
            | Some (Int 1), Some cj ->
                Result.map_error
                  (fun e -> corrupt path header 1 e)
                  (Config.of_json cj)
            | _ -> Error (corrupt path header 1 "not a fairsched WAL header"))
        | Error e ->
            Error (corrupt path header 1 (Printf.sprintf "bad WAL header: %s" e))
      in
      let* records, torn = parse_records ~file:path ~first_lineno:2 body in
      Ok (config, records, torn)

let read_snapshot path =
  let* text = Result.map_error (fun m -> Io m) (read_file path) in
  let fail reason =
    Error (Corrupt { c_file = path; c_line = 1; c_offset = 0; c_reason = reason })
  in
  match of_string (String.trim text) with
  | Error e -> fail e
  | Ok j -> (
      match snapshot_of_json j with
      | Error e -> fail e
      | Ok s ->
          (* The same monotonicity law applies inside a snapshot: a bit
             flip that clones or reorders records must refuse, not
             silently replay a different history. *)
          let rec mono last = function
            | [] -> Ok s
            | r :: rest ->
                let seq = seq_of r in
                if seq <= last then
                  fail
                    (Printf.sprintf
                       "snapshot record sequence %d not above previous %d" seq
                       last)
                else mono seq rest
          in
          let* s = mono min_int s.records in
          let max_seq =
            List.fold_left (fun acc r -> Stdlib.max acc (seq_of r)) 0 s.records
          in
          if max_seq > s.last_seq then
            fail
              (Printf.sprintf
                 "snapshot last_seq %d below its own records (max %d)"
                 s.last_seq max_seq)
          else Ok s)

let remove_orphan_tmp ~dir =
  let tmp = snapshot_path ~dir ^ ".tmp" in
  if Sys.file_exists tmp then (try Sys.remove tmp with Sys_error _ -> ())

let recover ~dir =
  (* A crash between snapshot write and rename leaves a .tmp behind; the
     renamed-or-not snapshot.json is authoritative either way. *)
  remove_orphan_tmp ~dir;
  let snap_file = snapshot_path ~dir in
  let wal_file = wal_path ~dir in
  let* snap =
    if Sys.file_exists snap_file then
      Result.map Option.some (read_snapshot snap_file)
    else Ok None
  in
  let* wal =
    if Sys.file_exists wal_file then
      Result.map Option.some (read_wal wal_file)
    else Ok None
  in
  let* config =
    match (snap, wal) with
    | None, None -> Ok None
    | Some s, None -> Ok (Some s.config)
    | None, Some (c, _, _) -> Ok (Some c)
    | Some s, Some (c, _, _) ->
        if Config.equal s.config c then Ok (Some s.config)
        else
          Error
            (Mismatch
               (Printf.sprintf
                  "state dir %s: snapshot and WAL disagree on the configuration"
                  dir))
  in
  let snap_records, last_snap_seq =
    match snap with None -> ([], 0) | Some s -> (s.records, s.last_seq)
  in
  let wal_records =
    match wal with
    | None -> []
    | Some (_, records, _) ->
        (* Records at or below the snapshot's last_seq were compacted
           into it; a crash before WAL truncation leaves them behind. *)
        List.filter (fun r -> seq_of r > last_snap_seq) records
  in
  let records = snap_records @ wal_records in
  let last_seq =
    List.fold_left (fun acc r -> Stdlib.max acc (seq_of r)) last_snap_seq records
  in
  Ok { r_config = config; r_records = records; r_last_seq = last_seq }

(* --- Offline inspection --------------------------------------------------- *)

type check_report = {
  ck_kind : [ `Wal | `Snapshot | `State_dir ];
  ck_config : Config.t option;
  ck_submits : int;
  ck_faults : int;
  ck_endows : int;
  ck_modes : int;
  ck_first_seq : int;
  ck_last_seq : int;
  ck_gaps : (int * int) list;
  ck_torn : (int * int * int) option;
}

let report_of_records ~kind ~config ~torn records =
  let submits, faults, endows, modes =
    List.fold_left
      (fun (s, f, e, m) -> function
        | Submit _ -> (s + 1, f, e, m)
        | Fault _ -> (s, f + 1, e, m)
        | Endow _ -> (s, f, e + 1, m)
        | Mode _ -> (s, f, e, m + 1))
      (0, 0, 0, 0) records
  in
  let seqs = List.map seq_of records in
  let first_seq = match seqs with [] -> 0 | s :: _ -> s in
  let last_seq = List.fold_left Stdlib.max 0 seqs in
  let rec gaps acc = function
    | a :: (b :: _ as rest) ->
        gaps (if b > a + 1 then (a, b) :: acc else acc) rest
    | [] | [ _ ] -> List.rev acc
  in
  {
    ck_kind = kind;
    ck_config = config;
    ck_submits = submits;
    ck_faults = faults;
    ck_endows = endows;
    ck_modes = modes;
    ck_first_seq = first_seq;
    ck_last_seq = last_seq;
    ck_gaps = gaps [] seqs;
    ck_torn = torn;
  }

let check path =
  if Sys.file_exists path && Sys.is_directory path then
    let* r = recover ~dir:path in
    (* Per-file torn diagnosis: re-read the WAL alone if present. *)
    let torn =
      let wal_file = wal_path ~dir:path in
      if Sys.file_exists wal_file then
        match read_wal wal_file with Ok (_, _, t) -> t | Error _ -> None
      else None
    in
    Ok
      (report_of_records ~kind:`State_dir ~config:r.r_config ~torn r.r_records)
  else if not (Sys.file_exists path) then
    Error (Io (Printf.sprintf "%s: no such file or directory" path))
  else
    (* Sniff the kind from the first line's magic. *)
    let* text = Result.map_error (fun m -> Io m) (read_file path) in
    let first_line =
      match String.index_opt text '\n' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      nn > 0 && at 0
    in
    if contains first_line wal_magic then
      let* config, records, torn = read_wal path in
      Ok (report_of_records ~kind:`Wal ~config:(Some config) ~torn records)
    else if contains first_line "fairsched_snapshot" then
      let* s = read_snapshot path in
      Ok
        (report_of_records ~kind:`Snapshot ~config:(Some s.config) ~torn:None
           s.records)
    else
      Error
        (Corrupt
           { c_file = path; c_line = 1; c_offset = 0;
             c_reason = "neither a fairsched WAL nor a snapshot" })

let pp_check ppf r =
  let kind =
    match r.ck_kind with
    | `Wal -> "wal"
    | `Snapshot -> "snapshot"
    | `State_dir -> "state-dir"
  in
  Format.fprintf ppf "kind: %s@." kind;
  (match r.ck_config with
  | Some c ->
      Format.fprintf ppf
        "config: %d orgs, %d machines, horizon %d, algorithm %s@."
        (Config.organizations c) (Config.total_machines c) c.Config.horizon
        c.Config.algorithm
  | None -> Format.fprintf ppf "config: (empty state)@.");
  Format.fprintf ppf "records: %d submit, %d fault, %d endow, %d mode@."
    r.ck_submits r.ck_faults r.ck_endows r.ck_modes;
  Format.fprintf ppf "seq range: %d..%d@." r.ck_first_seq r.ck_last_seq;
  (match r.ck_gaps with
  | [] -> Format.fprintf ppf "seq gaps: none@."
  | gaps ->
      Format.fprintf ppf "seq gaps: %s@."
        (String.concat ", "
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) gaps)));
  match r.ck_torn with
  | None -> Format.fprintf ppf "torn tail: none@."
  | Some (line, off, bytes) ->
      Format.fprintf ppf
        "torn tail: line %d at byte offset %d (%d bytes dropped)@." line off
        bytes
