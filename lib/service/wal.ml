type record =
  | Submit of { seq : int; org : int; user : int; release : int; size : int }
  | Fault of { seq : int; time : int; event : Faults.Event.t }

let seq_of = function Submit { seq; _ } | Fault { seq; _ } -> seq

open Obs.Json

let ( let* ) = Result.bind

let record_to_json = function
  | Submit { seq; org; user; release; size } ->
      Obj
        [
          ("rec", String "submit");
          ("seq", Int seq);
          ("org", Int org);
          ("user", Int user);
          ("release", Int release);
          ("size", Int size);
        ]
  | Fault { seq; time; event } ->
      let kind, machine =
        match event with
        | Faults.Event.Fail m -> ("fail", m)
        | Faults.Event.Recover m -> ("recover", m)
      in
      Obj
        [
          ("rec", String "fault");
          ("seq", Int seq);
          ("time", Int time);
          ("kind", String kind);
          ("machine", Int machine);
        ]

let int_field j name =
  match member j name with
  | Some (Int v) -> Ok v
  | Some _ -> Error (Printf.sprintf "WAL field %S must be an integer" name)
  | None -> Error (Printf.sprintf "WAL field %S missing" name)

let record_of_json j =
  match member j "rec" with
  | Some (String "submit") ->
      let* seq = int_field j "seq" in
      let* org = int_field j "org" in
      let* user = int_field j "user" in
      let* release = int_field j "release" in
      let* size = int_field j "size" in
      Ok (Submit { seq; org; user; release; size })
  | Some (String "fault") ->
      let* seq = int_field j "seq" in
      let* time = int_field j "time" in
      let* machine = int_field j "machine" in
      let* event =
        match member j "kind" with
        | Some (String "fail") -> Ok (Faults.Event.Fail machine)
        | Some (String "recover") -> Ok (Faults.Event.Recover machine)
        | _ -> Error "WAL field \"kind\" must be \"fail\" or \"recover\""
      in
      Ok (Fault { seq; time; event })
  | _ -> Error "WAL record missing \"rec\" discriminator"

let wal_path ~dir = Filename.concat dir "wal.ndjson"
let snapshot_path ~dir = Filename.concat dir "snapshot.json"

(* --- Writing ------------------------------------------------------------ *)

type writer = { fd : Unix.file_descr; buf : Buffer.t }

let wal_magic = "fairsched_wal"

let header_json config =
  Obj [ (wal_magic, Int 1); ("config", Config.to_json config) ]

let write_fully fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let protect_sys f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))
  | exception Sys_error msg -> Error msg

let create ~dir ~config =
  protect_sys (fun () ->
      let path = wal_path ~dir in
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      write_fully fd (to_string (header_json config) ^ "\n");
      Unix.fsync fd;
      { fd; buf = Buffer.create 4096 })

let append w record =
  to_buffer w.buf (record_to_json record);
  Buffer.add_char w.buf '\n'

let sync w =
  protect_sys (fun () ->
      if Buffer.length w.buf > 0 then begin
        write_fully w.fd (Buffer.contents w.buf);
        Buffer.clear w.buf;
        Unix.fsync w.fd
      end)

let close w =
  (match sync w with Ok () | Error _ -> ());
  try Unix.close w.fd with Unix.Unix_error _ -> ()

(* --- Snapshots ---------------------------------------------------------- *)

type snapshot = { config : Config.t; last_seq : int; records : record list }

let snapshot_json s =
  Obj
    [
      ("fairsched_snapshot", Int 1);
      ("config", Config.to_json s.config);
      ("last_seq", Int s.last_seq);
      ("records", List (List.map record_to_json s.records));
    ]

let snapshot_of_json j =
  let* config =
    match member j "config" with
    | Some cj -> Config.of_json cj
    | None -> Error "snapshot missing \"config\""
  in
  let* last_seq = int_field j "last_seq" in
  let* records =
    match member j "records" with
    | Some (List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest ->
              let* r = record_of_json item in
              go (r :: acc) rest
        in
        go [] items
    | Some _ | None -> Error "snapshot missing \"records\""
  in
  Ok { config; last_seq; records }

let write_snapshot ~dir s =
  protect_sys (fun () ->
      let path = snapshot_path ~dir in
      let tmp = path ^ ".tmp" in
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      write_fully fd (to_string (snapshot_json s) ^ "\n");
      Unix.fsync fd;
      Unix.close fd;
      Unix.rename tmp path;
      (* Persist the rename itself. *)
      (match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
      | dfd ->
          (try Unix.fsync dfd with Unix.Unix_error _ -> ());
          Unix.close dfd
      | exception Unix.Unix_error _ -> ());
      path)

(* --- Recovery ----------------------------------------------------------- *)

type recovery = {
  r_config : Config.t option;
  r_records : record list;
  r_last_seq : int;
}

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* A torn final line (crash mid-append) parses as garbage or truncated
   JSON: drop it.  Anything malformed before the last line means the log
   was damaged, not torn — refuse to guess. *)
let read_wal path =
  let* lines =
    match read_lines path with
    | lines -> Ok lines
    | exception Sys_error msg -> Error msg
  in
  match lines with
  | [] -> Error (Printf.sprintf "%s: empty WAL (missing header)" path)
  | header :: body ->
      let* config =
        match of_string header with
        | Ok hj -> (
            match (member hj wal_magic, member hj "config") with
            | Some (Int 1), Some cj -> Config.of_json cj
            | _ -> Error (Printf.sprintf "%s: not a fairsched WAL" path))
        | Error e -> Error (Printf.sprintf "%s: bad WAL header: %s" path e)
      in
      let n = List.length body in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            let parsed =
              let* j = of_string line in
              record_of_json j
            in
            match parsed with
            | Ok r -> go (i + 1) (r :: acc) rest
            | Error _ when i = n - 1 && line <> "" -> Ok (List.rev acc)
            | Error e ->
                Error (Printf.sprintf "%s: corrupt WAL record %d: %s" path (i + 2) e))
      in
      let* records = go 0 [] body in
      Ok (config, records)

let recover ~dir =
  let snap_file = snapshot_path ~dir in
  let wal_file = wal_path ~dir in
  let* snap =
    if Sys.file_exists snap_file then
      match read_lines snap_file with
      | exception Sys_error msg -> Error msg
      | lines -> (
          let text = String.concat "\n" lines in
          match of_string text with
          | Error e -> Error (Printf.sprintf "%s: %s" snap_file e)
          | Ok j ->
              Result.map Option.some
                (Result.map_error
                   (fun e -> Printf.sprintf "%s: %s" snap_file e)
                   (snapshot_of_json j)))
    else Ok None
  in
  let* wal =
    if Sys.file_exists wal_file then Result.map Option.some (read_wal wal_file)
    else Ok None
  in
  let* config =
    match (snap, wal) with
    | None, None -> Ok None
    | Some s, None -> Ok (Some s.config)
    | None, Some (c, _) -> Ok (Some c)
    | Some s, Some (c, _) ->
        if Config.equal s.config c then Ok (Some s.config)
        else
          Error
            (Printf.sprintf
               "state dir %s: snapshot and WAL disagree on the configuration"
               dir)
  in
  let snap_records, last_snap_seq =
    match snap with None -> ([], 0) | Some s -> (s.records, s.last_seq)
  in
  let wal_records =
    match wal with
    | None -> []
    | Some (_, records) ->
        List.filter (fun r -> seq_of r > last_snap_seq) records
  in
  let records = snap_records @ wal_records in
  let last_seq =
    List.fold_left (fun acc r -> Stdlib.max acc (seq_of r)) last_snap_seq records
  in
  Ok { r_config = config; r_records = records; r_last_seq = last_seq }
