(** Listen/connect addresses for the daemon.

    Two transports, one syntax:

    - ["unix:/path/to.sock"] (or a bare path containing ['/']) — a
      Unix-domain socket, the default for local single-machine use;
    - ["tcp:HOST:PORT"] — TCP, for the load generator on another host.

    The wire protocol is identical over both (newline-delimited JSON,
    {!Protocol}). *)

type t =
  | Unix_sock of string  (** filesystem path of the socket *)
  | Tcp of string * int  (** host, port *)

val of_string : string -> (t, string) result
(** Parse ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (must contain
    ['/']).  Rejects empty paths, ports outside [1, 65535], and anything
    else with a one-line message. *)

val to_string : t -> string
(** Round-trips through {!of_string}. *)

val to_sockaddr : t -> Unix.sockaddr
(** Resolve for [Unix.bind]/[Unix.connect].  Numeric TCP hosts are used
    directly; names go through [gethostbyname].
    @raise Failure if a TCP host does not resolve. *)

val domain : t -> Unix.socket_domain

val cleanup : t -> unit
(** Remove a stale Unix-socket file if present; no-op for TCP. *)

val pp : Format.formatter -> t -> unit
