type t = Unix_sock of string | Tcp of string * int

let of_string s =
  let parse_tcp rest =
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "bad tcp address %S: expected HOST:PORT" s)
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 1 && p <= 65_535 ->
            if host = "" then Error (Printf.sprintf "bad tcp address %S: empty host" s)
            else Ok (Tcp (host, p))
        | Some _ | None ->
            Error (Printf.sprintf "bad tcp address %S: port must be 1-65535" s))
  in
  let prefixed prefix =
    if String.length s > String.length prefix
       && String.sub s 0 (String.length prefix) = prefix
    then Some (String.sub s (String.length prefix)
                 (String.length s - String.length prefix))
    else None
  in
  match prefixed "unix:" with
  | Some path ->
      if path = "" then Error "bad unix address: empty path"
      else Ok (Unix_sock path)
  | None -> (
      match prefixed "tcp:" with
      | Some rest -> parse_tcp rest
      | None ->
          if String.contains s '/' then Ok (Unix_sock s)
          else
            Error
              (Printf.sprintf
                 "bad address %S: expected unix:PATH, tcp:HOST:PORT, or a \
                  socket path containing '/'"
                 s))

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let to_sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | addr -> Unix.ADDR_INET (addr, port)
      | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
              failwith (Printf.sprintf "cannot resolve host %S" host)
          | { Unix.h_addr_list; _ } -> Unix.ADDR_INET (h_addr_list.(0), port)))

let domain = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let cleanup = function
  | Tcp _ -> ()
  | Unix_sock path -> (
      match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> (try Unix.unlink path with _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ())

let pp ppf t = Format.pp_print_string ppf (to_string t)
