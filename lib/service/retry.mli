(** Jittered exponential backoff with a bounded budget.

    Pure policy arithmetic — no sleeping, no sockets — so the retry
    schedule is unit-testable and every consumer ({!Client.Resilient},
    {!Loadgen}) shares one implementation.  The caller loops: attempt the
    operation, and on a retryable failure ask {!next} whether to sleep
    and go again or give up.

    The delay for failure [attempt] (1-based) is
    [base_delay_ms * multiplier^(attempt-1)] capped at [max_delay_ms],
    raised to the server's [retry_after_ms] hint when one was given, then
    jittered by a uniform factor in [1 - jitter, 1 + jitter].  Jitter
    breaks retry synchronization: a fleet of clients bounced by the same
    overloaded server must not come back in lockstep. *)

type policy = {
  max_attempts : int;  (** total tries including the first; >= 1 *)
  base_delay_ms : float;
  max_delay_ms : float;
  multiplier : float;
  jitter : float;  (** fraction in [0, 1); 0 = deterministic delays *)
  budget_ms : float;  (** wall-clock cap across all attempts; [infinity] = none *)
}

val default : policy
(** 8 attempts, 25 ms base, 2 s cap, x2 growth, 0.25 jitter, 30 s budget. *)

val policy :
  ?max_attempts:int ->
  ?base_delay_ms:float ->
  ?max_delay_ms:float ->
  ?multiplier:float ->
  ?jitter:float ->
  ?budget_ms:float ->
  unit ->
  policy
(** {!default} with overrides; out-of-range values are clamped sane. *)

type verdict =
  | Sleep of float  (** wait this many milliseconds, then try again *)
  | Give_up  (** attempts or budget exhausted *)

val next :
  policy ->
  rng:Fstats.Rng.t ->
  attempt:int ->
  elapsed_ms:float ->
  retry_after_ms:int option ->
  verdict
(** [next p ~rng ~attempt ~elapsed_ms ~retry_after_ms] decides after the
    [attempt]-th failure (1-based).  Gives up when [attempt >=
    max_attempts] or when [elapsed_ms] plus the computed delay would
    exceed [budget_ms] — better to fail now than to sleep into certain
    failure. *)
