type t = {
  config : Config.t;
  session : Sim.Session.t;
  next_index : int array;  (* per-org FIFO rank counter *)
  (* Admission-time ownership: the session's own copy only advances when
     the engine processes an instant, so same-instant endow sequences
     would validate against stale state.  This copy replays every event
     at admission, mirroring Federation.Event.validate. *)
  ownership : Federation.Event.Ownership.t;
  mutable frontier : int;
  mutable submitted : int;
  mutable faults_fed : int;
  mutable endows_fed : int;
  mutable drained : bool;
}

type error =
  | Bad_org of { org : int; norgs : int }
  | Bad_size of int
  | Bad_release of { release : int; frontier : int }
  | Past_horizon of { release : int; horizon : int }
  | Bad_machine of { machine : int; machines : int }
  | Bad_fault_time of { time : int; frontier : int }
  | Bad_endow_time of { time : int; frontier : int }
  | Bad_endow of string
  | Not_federated
  | Drained

let error_to_string = function
  | Bad_org { org; norgs } ->
      Printf.sprintf "organization %d out of range [0, %d)" org norgs
  | Bad_size s -> Printf.sprintf "job size must be positive, got %d" s
  | Bad_release { release; frontier } ->
      Printf.sprintf
        "release %d before the admission frontier %d (submissions must \
         arrive in release order)"
        release frontier
  | Past_horizon { release; horizon } ->
      Printf.sprintf "release %d at or past the horizon %d" release horizon
  | Bad_machine { machine; machines } ->
      Printf.sprintf "machine %d out of range [0, %d)" machine machines
  | Bad_fault_time { time; frontier } ->
      Printf.sprintf "fault time %d before the admission frontier %d" time
        frontier
  | Bad_endow_time { time; frontier } ->
      Printf.sprintf "endowment time %d before the admission frontier %d" time
        frontier
  | Bad_endow msg -> msg
  | Not_federated ->
      "daemon is not federated (start it with --federation to accept \
       endowment events)"
  | Drained -> "session already drained"

let machine_homes config =
  let homes = Array.make (Config.total_machines config) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun u m ->
      for _ = 1 to m do
        homes.(!pos) <- u;
        incr pos
      done)
    config.Config.machines;
  homes

let create config =
  let instance = Config.empty_instance config in
  let maker = Algorithms.Registry.find_exn config.Config.algorithm in
  let rng = Fstats.Rng.create ~seed:config.Config.seed in
  let session =
    Sim.Session.create ~record:true ?workers:config.Config.workers
      ?max_restarts:config.Config.max_restarts
      ~federated:config.Config.federated ~instance ~rng maker
  in
  {
    config;
    session;
    next_index = Array.make (Config.organizations config) 0;
    ownership =
      Federation.Event.Ownership.create ~homes:(machine_homes config)
        ~orgs:(Config.organizations config);
    frontier = 0;
    submitted = 0;
    faults_fed = 0;
    endows_fed = 0;
    drained = false;
  }

let check_submit t ~org ~size ~release =
  let norgs = Config.organizations t.config in
  if t.drained then Error Drained
  else if org < 0 || org >= norgs then Error (Bad_org { org; norgs })
  else if size <= 0 then Error (Bad_size size)
  else if release < 0 || release < t.frontier then
    Error (Bad_release { release; frontier = t.frontier })
  else if release >= t.config.Config.horizon then
    Error (Past_horizon { release; horizon = t.config.Config.horizon })
  else Ok ()

let submit t ~org ?(user = 0) ~size ~release () =
  match check_submit t ~org ~size ~release with
  | Error _ as e -> e
  | Ok () ->
      let index = t.next_index.(org) in
      t.next_index.(org) <- index + 1;
      t.frontier <- release;
      t.submitted <- t.submitted + 1;
      Sim.Session.advance_below t.session ~time:release;
      Sim.Session.feed_job t.session
        (Core.Job.make ~org ~index ~user ~release ~size ());
      Ok index

let check_fault t ~time event =
  let machines = Config.total_machines t.config in
  let m = Faults.Event.machine event in
  if t.drained then Error Drained
  else if m < 0 || m >= machines then Error (Bad_machine { machine = m; machines })
  else if time < 0 || time < t.frontier then
    Error (Bad_fault_time { time; frontier = t.frontier })
  else Ok ()

let fault t ~time event =
  match check_fault t ~time event with
  | Error _ as e -> e
  | Ok () ->
      t.frontier <- time;
      t.faults_fed <- t.faults_fed + 1;
      Sim.Session.advance_below t.session ~time;
      Sim.Session.feed_fault t.session { Faults.Event.time; event };
      Ok ()

let check_endow_time t ~time =
  if t.drained then Error Drained
  else if not t.config.Config.federated then Error Not_federated
  else if time < 0 || time < t.frontier then
    Error (Bad_endow_time { time; frontier = t.frontier })
  else Ok ()

let check_endow t ~time event =
  match check_endow_time t ~time with
  | Error _ as e -> e
  | Ok () -> (
      (* Replay preconditions on a throwaway copy: check must not move
         the admission state (the caller may still reject the feed). *)
      match
        Federation.Event.Ownership.apply
          (Federation.Event.Ownership.copy t.ownership)
          event
      with
      | Ok _ -> Ok ()
      | Error msg -> Error (Bad_endow msg))

let endow t ~time event =
  match check_endow_time t ~time with
  | Error _ as e -> e
  | Ok () -> (
      (* [apply] leaves the state unchanged on [Error], so mutating the
         real admission copy here is itself the validation. *)
      match Federation.Event.Ownership.apply t.ownership event with
      | Error msg -> Error (Bad_endow msg)
      | Ok _changes ->
          t.frontier <- time;
          t.endows_fed <- t.endows_fed + 1;
          Sim.Session.advance_below t.session ~time;
          Sim.Session.feed_endow t.session { Federation.Event.time; event };
          Ok ())

let drain t =
  if not t.drained then begin
    Sim.Session.run_to_horizon t.session ();
    t.drained <- true
  end

let config t = t.config
let now t = Sim.Session.now t.session
let frontier t = t.frontier
let drained t = t.drained
let submitted t = t.submitted
let faults_fed t = t.faults_fed
let endows_fed t = t.endows_fed
let ownership t = t.ownership
(* Before drain, values are exact only at the last processed instant;
   after drain every event is final and the batch convention applies:
   evaluate at the horizon (Definition 3.2 judges ψsp there). *)
let eval_at t = if t.drained then t.config.Config.horizon else now t

let psi_scaled t = Sim.Session.psi_scaled t.session ~at:(eval_at t)
let parts t = Sim.Session.parts_at t.session ~at:(eval_at t)

let queue_depths t =
  let cluster = Sim.Session.cluster t.session in
  Array.init (Config.organizations t.config) (Core.Cluster.waiting_count cluster)

let stats t = Sim.Session.stats t.session
let schedule t = Sim.Session.schedule t.session
let session t = t.session
