(** The incremental engine behind the daemon: {!Sim.Session} plus the
    admission rules an untrusted submission stream needs.

    An [Online.t] is created from a {!Config.t} with an empty job set; the
    server feeds it job submissions and fault events as they arrive over
    the socket.  Admission enforces what a batch {!Core.Instance.make}
    would have enforced structurally — organization in range, positive
    size, releases non-decreasing — plus the online-only constraint that
    time never runs backwards past what the engine has already committed.

    Bit-identity contract: feeding the jobs of a batch instance in release
    order (with {!submit} assigning the FIFO ranks) and then {!drain}ing
    reproduces {!Sim.Driver.run}'s schedule, ψsp vector, and kernel
    counters exactly.  This is what makes WAL replay a complete recovery
    mechanism: the log stores inputs, not state. *)

type t

type error =
  | Bad_org of { org : int; norgs : int }
  | Bad_size of int
  | Bad_release of { release : int; frontier : int }
      (** releases must be non-decreasing across submissions *)
  | Past_horizon of { release : int; horizon : int }
  | Bad_machine of { machine : int; machines : int }
  | Bad_fault_time of { time : int; frontier : int }
  | Bad_endow_time of { time : int; frontier : int }
  | Bad_endow of string
      (** the event violates an ownership precondition (lending a machine
          the org does not own, joining while active, …) *)
  | Not_federated  (** endow feeds need a [federated] config *)
  | Drained  (** the session was already drained; no further feeding *)

val error_to_string : error -> string

val create : Config.t -> t
(** Fresh session over the config's empty instance.  Constructing the
    policy may be expensive (REF enumerates coalitions) — do it once, at
    daemon start. *)

val check_submit : t -> org:int -> size:int -> release:int -> (unit, error) result
(** Validation only — no state change.  The server calls this before
    writing the submission to the WAL, so the log never contains a record
    that {!submit} would reject. *)

val submit :
  t -> org:int -> ?user:int -> size:int -> release:int -> unit ->
  (int, error) result
(** Admit one job: validate, assign the organization's next FIFO rank
    (returned), advance the engine below [release], and feed the job.
    Instant [release] itself stays open so same-instant arrivals land in
    the same kernel phase, exactly as in a batch run. *)

val check_fault : t -> time:int -> Faults.Event.t -> (unit, error) result

val fault : t -> time:int -> Faults.Event.t -> (unit, error) result
(** Admit one fault event (same discipline as {!submit}: validate,
    advance below [time], feed). *)

val check_endow : t -> time:int -> Federation.Event.t -> (unit, error) result
(** Validation only: frontier discipline plus the event's ownership
    preconditions, replayed against a copy of the admission-time
    consortium state — no state change. *)

val endow : t -> time:int -> Federation.Event.t -> (unit, error) result
(** Admit one endowment event: validate against (and advance) the
    admission-time ownership state, advance the engine below [time], and
    feed the event.  Requires a [federated] config ({!Config.t}). *)

val drain : t -> unit
(** Run every remaining event to the horizon.  Idempotent; after draining,
    further {!submit}/{!fault} calls return [Error Drained]. *)

(** {2 Inspection} *)

val config : t -> Config.t
val now : t -> int
(** Last processed instant ({!Sim.Session.now}). *)

val frontier : t -> int
(** Largest admitted release/fault time (0 initially) — the earliest time
    a future submission may carry. *)

val drained : t -> bool
val submitted : t -> int
(** Jobs admitted so far. *)

val faults_fed : t -> int
val endows_fed : t -> int

val ownership : t -> Federation.Event.Ownership.t
(** The admission-time consortium state: every admitted endow event has
    been applied (even if the engine has not yet processed its instant).
    Feeds the live membership gauges. *)

val psi_scaled : t -> int array
(** [2·ψsp(u)] per organization at {!now} — the last instant at which the
    value is exact. *)

val parts : t -> int array
val queue_depths : t -> int array
(** Waiting (released, unstarted) jobs per organization. *)

val stats : t -> Kernel.Stats.t
(** Kernel + policy counters, as {!Sim.Driver.run} reports them. *)

val schedule : t -> Core.Schedule.t
(** Placements so far (sessions are created with [record:true]). *)

val session : t -> Sim.Session.t
(** Escape hatch for the equivalence tests. *)
