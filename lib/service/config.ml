type t = {
  machines : int array;
  speeds : float array option;
  horizon : int;
  algorithm : string;
  seed : int;
  max_restarts : int option;
  workers : int option;
  groups : int;
  federated : bool;
}

(* Org-groups partition the organizations into contiguous balanced blocks:
   group [g] owns orgs [g*k/G, (g+1)*k/G).  Machines follow their orgs. *)
let group_org_lo ~orgs ~groups g = g * orgs / groups

let make ?speeds ?max_restarts ?workers ?(groups = 1) ?(federated = false)
    ~machines ~horizon ~algorithm ~seed () =
  let total = Array.fold_left ( + ) 0 machines in
  let orgs = Array.length machines in
  let empty_group () =
    (* every group needs at least one machine, or its session is invalid *)
    let rec go g =
      if g >= groups then false
      else
        let lo = group_org_lo ~orgs ~groups g
        and hi = group_org_lo ~orgs ~groups (g + 1) in
        let sum = ref 0 in
        for o = lo to hi - 1 do
          sum := !sum + machines.(o)
        done;
        if !sum = 0 then true else go (g + 1)
    in
    go 0
  in
  if Array.length machines = 0 then Error "no organizations"
  else if Array.exists (fun m -> m < 0) machines then
    Error "negative machine count"
  else if total = 0 then Error "no machines at all"
  else if horizon <= 0 then Error "horizon must be positive"
  else if Algorithms.Registry.find algorithm = None then
    Error (Printf.sprintf "unknown algorithm %S" algorithm)
  else if (match max_restarts with Some r -> r < 0 | None -> false) then
    Error "max_restarts must be >= 0"
  else if (match workers with Some w -> w < 1 | None -> false) then
    Error "workers must be >= 1"
  else if groups < 1 then Error "groups must be >= 1"
  else if groups > orgs then Error "groups must not exceed the organization count"
  else if empty_group () then Error "every org-group needs at least one machine"
  else
    match speeds with
    | Some sp when Array.length sp <> total ->
        Error "speeds length must match the machine count"
    | Some sp when Array.exists (fun s -> s <= 0.) sp ->
        Error "speeds must be positive"
    | _ ->
        Ok
          {
            machines;
            speeds;
            horizon;
            algorithm;
            seed;
            max_restarts;
            workers;
            groups;
            federated;
          }

let organizations t = Array.length t.machines
let total_machines t = Array.fold_left ( + ) 0 t.machines

let empty_instance t =
  match t.speeds with
  | None -> Core.Instance.make ~machines:t.machines ~jobs:[] ~horizon:t.horizon
  | Some speeds ->
      Core.Instance.make_related ~speeds ~machines:t.machines ~jobs:[]
        ~horizon:t.horizon

let to_json t =
  let open Obs.Json in
  Obj
    (List.concat
       [
         [
           ("machines", List (Array.to_list (Array.map (fun m -> Int m) t.machines)));
         ];
         (match t.speeds with
         | None -> []
         | Some sp ->
             [ ("speeds", List (Array.to_list (Array.map (fun s -> Float s) sp))) ]);
         [
           ("horizon", Int t.horizon);
           ("algorithm", String t.algorithm);
           ("seed", Int t.seed);
         ];
         (match t.max_restarts with
         | None -> []
         | Some r -> [ ("max_restarts", Int r) ]);
         (match t.workers with
         | None -> []
         | Some w -> [ ("workers", Int w) ]);
         (* omitted when 1 so single-group WAL headers stay byte-identical
            with logs written before sharding existed *)
         (if t.groups = 1 then [] else [ ("groups", Int t.groups) ]);
         (* same discipline: only federated daemons mark their headers *)
         (if t.federated then [ ("federated", Bool true) ] else []);
       ])

let int_field j name =
  match Obs.Json.member j name with
  | Some (Obs.Json.Int v) -> Ok v
  | Some _ -> Error (Printf.sprintf "config field %S must be an integer" name)
  | None -> Error (Printf.sprintf "config field %S missing" name)

let opt_int_field j name =
  match Obs.Json.member j name with
  | None -> Ok None
  | Some (Obs.Json.Int v) -> Ok (Some v)
  | Some _ -> Error (Printf.sprintf "config field %S must be an integer" name)

let of_json j =
  let ( let* ) = Result.bind in
  let* machines =
    match Obs.Json.member j "machines" with
    | Some (Obs.Json.List items) ->
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | Obs.Json.Int m :: rest -> go (m :: acc) rest
          | _ -> Error "config field \"machines\" must be a list of integers"
        in
        go [] items
    | Some _ | None -> Error "config field \"machines\" missing or not a list"
  in
  let* speeds =
    match Obs.Json.member j "speeds" with
    | None -> Ok None
    | Some (Obs.Json.List items) ->
        let rec go acc = function
          | [] -> Ok (Some (Array.of_list (List.rev acc)))
          | item :: rest -> (
              match Obs.Json.get_number item with
              | Some f -> go (f :: acc) rest
              | None -> Error "config field \"speeds\" must be numeric")
        in
        go [] items
    | Some _ -> Error "config field \"speeds\" must be a list"
  in
  let* horizon = int_field j "horizon" in
  let* algorithm =
    match Obs.Json.member j "algorithm" with
    | Some (Obs.Json.String s) -> Ok s
    | Some _ | None -> Error "config field \"algorithm\" missing"
  in
  let* seed = int_field j "seed" in
  let* max_restarts = opt_int_field j "max_restarts" in
  let* workers = opt_int_field j "workers" in
  let* groups =
    match opt_int_field j "groups" with
    | Ok None -> Ok 1
    | Ok (Some g) -> Ok g
    | Error e -> Error e
  in
  let* federated =
    match Obs.Json.member j "federated" with
    | None -> Ok false
    | Some (Obs.Json.Bool b) -> Ok b
    | Some _ -> Error "config field \"federated\" must be a boolean"
  in
  make ?speeds ?max_restarts ?workers ~groups ~federated ~machines ~horizon
    ~algorithm ~seed ()

let equal a b =
  a.machines = b.machines && a.speeds = b.speeds && a.horizon = b.horizon
  && a.algorithm = b.algorithm && a.seed = b.seed
  && a.max_restarts = b.max_restarts && a.groups = b.groups
  && a.federated = b.federated

let pp ppf t =
  Format.fprintf ppf "%s k=%d m=%d horizon=%d seed=%d" t.algorithm
    (organizations t) (total_machines t) t.horizon t.seed
