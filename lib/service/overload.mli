(** Overload detection for the daemon: queue depth + ack latency, with
    hysteresis.

    The server feeds two signals after every batch — admission-queue
    occupancy and the latency of each acknowledged feed — and reads back
    a binary {!level}.  The detector trips to [Overloaded] only after the
    pressure signal has been continuously high for [trip_ms], and drops
    back to [Normal] only after it has been continuously low for
    [recover_ms].  The dwell times are the hysteresis: a single burst or
    a single idle poll must not flap the estimator back and forth, since
    every degraded-mode switch costs a full WAL replay (DESIGN.md §14).

    Pure state machine over an injected millisecond clock — tests drive
    it with a counter; the server passes {!Obs.Clock} time. *)

type config = {
  queue_high : float;  (** occupancy fraction that counts as pressure *)
  queue_low : float;  (** occupancy fraction that counts as calm *)
  ack_high_ms : float;  (** ack-latency EWMA that counts as pressure *)
  ack_low_ms : float;
  alpha : float;  (** EWMA smoothing factor in (0, 1] *)
  trip_ms : float;  (** sustained pressure before tripping *)
  recover_ms : float;  (** sustained calm before recovering *)
}

val default : config
(** queue 0.8 / 0.3, ack 50 ms / 10 ms, alpha 0.2, trip 100 ms,
    recover 500 ms. *)

type level = Normal | Overloaded

type t

val create : ?config:config -> now_ms:(unit -> float) -> unit -> t
(** Starts [Normal] with an empty EWMA. *)

val observe_ack : t -> latency_ms:float -> unit
(** Fold one feed's submit-to-ack latency into the EWMA and re-evaluate. *)

val observe_queue : t -> depth:int -> cap:int -> unit
(** Report admission-queue occupancy and re-evaluate.  Call this every
    loop iteration, including idle ones — recovery is detected by
    observing calm, not by the absence of observations. *)

val level : t -> level

val worst : level list -> level
(** Roll per-shard levels up to one service health: [Overloaded] if any
    shard is. *)

val ack_ewma_ms : t -> float
(** Current EWMA; 0 before the first observation. *)

val retry_after_ms : t -> int
(** Suggested client back-off when shedding: scales with the smoothed
    ack latency, bounded to [25, 2000] ms. *)
