type t = { fd : Unix.file_descr; rbuf : Buffer.t }

let protect f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure msg -> Error msg

let connect addr =
  protect (fun () ->
      let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
      (match addr with
      | Addr.Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
      | Addr.Unix_sock _ -> ());
      (try Unix.connect fd (Addr.to_sockaddr addr)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      { fd; rbuf = Buffer.create 1024 })

let write_fully fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
  in
  go 0

(* Read until the buffer holds a full line; tolerate responses split
   across reads and multiple responses per read (leftover stays
   buffered for the next call). *)
let read_line t =
  let chunk = Bytes.create 4096 in
  let rec take () =
    let s = Buffer.contents t.rbuf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf s (i + 1) (String.length s - i - 1);
        Ok (String.sub s 0 i)
    | None ->
        if Buffer.length t.rbuf > Protocol.max_line then
          Error "response line too long"
        else begin
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "connection closed by server"
          | n ->
              Buffer.add_subbytes t.rbuf chunk 0 n;
              take ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
          | exception Unix.Unix_error (e, fn, _) ->
              Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
        end
  in
  take ()

let request t req =
  let ( let* ) = Result.bind in
  let* () = protect (fun () -> write_fully t.fd (Protocol.request_to_line req)) in
  let* line = read_line t in
  Protocol.response_of_line line

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
