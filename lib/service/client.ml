type error =
  | Timeout of string
  | Closed
  | Refused of string
  | Transport of string

let error_to_string = function
  | Timeout phase -> Printf.sprintf "timeout during %s" phase
  | Closed -> "connection closed by server"
  | Refused msg -> Printf.sprintf "connect: %s" msg
  | Transport msg -> msg

let is_transient = function
  | Timeout _ | Closed | Refused _ | Transport _ -> true

type t = { fd : Unix.file_descr; rbuf : Buffer.t; default_timeout : float }

let ( let* ) = Result.bind

(* Wait until [fd] is readable/writable or the deadline passes.
   [deadline = infinity] blocks indefinitely. *)
let await_fd fd ~phase ~what ~deadline =
  let rec go () =
    let left =
      if deadline = infinity then -1.0
      else Float.max 0.0 (deadline -. Unix.gettimeofday ())
    in
    if left = 0.0 && deadline <> infinity then Error (Timeout phase)
    else
      let r, w =
        match what with `Read -> ([ fd ], []) | `Write -> ([], [ fd ])
      in
      match Unix.select r w [] left with
      | [], [], [] -> Error (Timeout phase)
      | _ -> Ok ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, fn, _) ->
          Error (Transport (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
  in
  go ()

let deadline_of timeout_s =
  if timeout_s <= 0.0 then infinity else Unix.gettimeofday () +. timeout_s

let connect ?(timeout_s = 5.0) addr =
  let deadline = deadline_of timeout_s in
  match Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Refused (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
  | fd -> (
      let fail err =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error err
      in
      (match addr with
      | Addr.Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
      | Addr.Unix_sock _ -> ());
      Unix.set_nonblock fd;
      let finish () =
        (* connect(2) completed in the background: surface its verdict. *)
        match Unix.getsockopt_error fd with
        | Some e -> fail (Refused (Unix.error_message e))
        | None ->
            Unix.clear_nonblock fd;
            Ok { fd; rbuf = Buffer.create 1024; default_timeout = timeout_s }
      in
      match Unix.connect fd (Addr.to_sockaddr addr) with
      | () ->
          Unix.clear_nonblock fd;
          Ok { fd; rbuf = Buffer.create 1024; default_timeout = timeout_s }
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
        -> (
          match await_fd fd ~phase:"connect" ~what:`Write ~deadline with
          | Ok () -> finish ()
          | Error e -> fail e)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> (
          (* The kernel keeps connecting; wait for the outcome. *)
          match await_fd fd ~phase:"connect" ~what:`Write ~deadline with
          | Ok () -> finish ()
          | Error e -> fail e)
      | exception Unix.Unix_error (e, _, _) ->
          fail (Refused (Unix.error_message e)))

let write_fully fd s ~deadline =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
          match await_fd fd ~phase:"write" ~what:`Write ~deadline with
          | Ok () -> go off
          | Error _ as e -> e)
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> Error Closed
      | exception Unix.Unix_error (e, fn, _) ->
          Error (Transport (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
  in
  go 0

(* Read until the buffer holds a full line; tolerate responses split
   across reads and multiple responses per read (leftover stays
   buffered for the next call). *)
let read_line t ~deadline =
  let chunk = Bytes.create 4096 in
  let rec take () =
    let s = Buffer.contents t.rbuf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear t.rbuf;
        Buffer.add_substring t.rbuf s (i + 1) (String.length s - i - 1);
        Ok (String.sub s 0 i)
    | None ->
        if Buffer.length t.rbuf > Protocol.max_line then
          Error (Transport "response line too long")
        else begin
          let* () = await_fd t.fd ~phase:"read" ~what:`Read ~deadline in
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error Closed
          | n ->
              Buffer.add_subbytes t.rbuf chunk 0 n;
              take ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              take ()
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Error Closed
          | exception Unix.Unix_error (e, fn, _) ->
              Error
                (Transport (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
        end
  in
  take ()

let request ?timeout_s t req =
  let timeout_s = Option.value ~default:t.default_timeout timeout_s in
  let deadline = deadline_of timeout_s in
  let* () = write_fully t.fd (Protocol.request_to_line req) ~deadline in
  let* line = read_line t ~deadline in
  Result.map_error (fun m -> Transport m) (Protocol.response_of_line line)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- Retrying client ----------------------------------------------------- *)

module Resilient = struct
  type stats = {
    attempts : int;
    retries : int;
    backpressured : int;
    reconnects : int;
    gave_up : int;
  }

  type conn = {
    addr : Addr.t;
    policy : Retry.policy;
    timeout_s : float;
    rng : Fstats.Rng.t;
    r_cid : int;
    mutable next_cseq : int;
    mutable live : t option;
    mutable s_attempts : int;
    mutable s_retries : int;
    mutable s_backpressured : int;
    mutable s_reconnects : int;
    mutable s_gave_up : int;
  }

  let create ?(policy = Retry.default) ?(timeout_s = 5.0) ?cid ~rng addr =
    let r_cid =
      match cid with
      | Some c when c > 0 -> c
      | Some _ | None -> 1 + Fstats.Rng.int rng ((1 lsl 30) - 1)
    in
    {
      addr;
      policy;
      timeout_s;
      rng;
      r_cid;
      next_cseq = 0;
      live = None;
      s_attempts = 0;
      s_retries = 0;
      s_backpressured = 0;
      s_reconnects = 0;
      s_gave_up = 0;
    }

  let cid c = c.r_cid

  let stats c =
    {
      attempts = c.s_attempts;
      retries = c.s_retries;
      backpressured = c.s_backpressured;
      reconnects = c.s_reconnects;
      gave_up = c.s_gave_up;
    }

  let drop_live c =
    match c.live with
    | None -> ()
    | Some t ->
        close t;
        c.live <- None

  let ensure_connected c =
    match c.live with
    | Some t -> Ok t
    | None -> (
        match connect ~timeout_s:c.timeout_s c.addr with
        | Ok t ->
            c.live <- Some t;
            Ok t
        | Error _ as e -> e)

  (* Stamp Submit/Fault with this connection's identity exactly once —
     before the first attempt — so every retransmission of the request
     carries the same (cid, cseq) and the server can deduplicate.  The
     trace id rides the same discipline: derived from the (cid, cseq)
     stamp, so retransmissions keep one identity in the server's trace
     and a caller-chosen id survives untouched. *)
  let trace_of ~cid ~cseq = (cid lsl 20) lor (cseq land 0xFFFFF)

  let stamp c req =
    match req with
    | Protocol.Submit s when s.cid = 0 ->
        c.next_cseq <- c.next_cseq + 1;
        let trace =
          if s.trace = 0 then trace_of ~cid:c.r_cid ~cseq:c.next_cseq
          else s.trace
        in
        Protocol.Submit { s with cid = c.r_cid; cseq = c.next_cseq; trace }
    | Protocol.Fault f when f.cid = 0 ->
        c.next_cseq <- c.next_cseq + 1;
        let trace =
          if f.trace = 0 then trace_of ~cid:c.r_cid ~cseq:c.next_cseq
          else f.trace
        in
        Protocol.Fault { f with cid = c.r_cid; cseq = c.next_cseq; trace }
    | Protocol.Endow e when e.cid = 0 ->
        c.next_cseq <- c.next_cseq + 1;
        let trace =
          if e.trace = 0 then trace_of ~cid:c.r_cid ~cseq:c.next_cseq
          else e.trace
        in
        Protocol.Endow { e with cid = c.r_cid; cseq = c.next_cseq; trace }
    | req -> req

  let call c req =
    let req = stamp c req in
    let t0 = Unix.gettimeofday () in
    let rec go attempt =
      let outcome =
        let* t = ensure_connected c in
        c.s_attempts <- c.s_attempts + 1;
        request t req
      in
      let retry ~hint ~on_transport =
        if on_transport then drop_live c;
        let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        match
          Retry.next c.policy ~rng:c.rng ~attempt ~elapsed_ms
            ~retry_after_ms:hint
        with
        | Retry.Give_up ->
            c.s_gave_up <- c.s_gave_up + 1;
            None
        | Retry.Sleep ms ->
            if on_transport then c.s_retries <- c.s_retries + 1
            else c.s_backpressured <- c.s_backpressured + 1;
            if on_transport then c.s_reconnects <- c.s_reconnects + 1;
            Unix.sleepf (ms /. 1000.0);
            Some (attempt + 1)
      in
      match outcome with
      | Ok (Protocol.Error { code = Protocol.Backpressure; retry_after_ms; _ })
        as last -> (
          match retry ~hint:retry_after_ms ~on_transport:false with
          | Some next -> go next
          | None -> last)
      | Ok _ as ok -> ok
      | Error e as last when is_transient e -> (
          match retry ~hint:None ~on_transport:true with
          | Some next -> go next
          | None -> last)
      | Error _ as err -> err
    in
    go 1

  let close c = drop_live c
end
