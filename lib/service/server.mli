(** The scheduler daemon: a single-threaded, [select]-driven socket server
    wrapping one {!Online.t}.

    One thread is enough — and is what makes the service deterministic:
    requests are admitted in a single global arrival order, so the engine
    sees one canonical event stream regardless of how many clients race.
    (Policy-internal parallelism — REF's domain pool — is below this
    layer and bit-identical by construction.)

    Per iteration the loop: accepts connections, reads available bytes,
    splits complete lines into a global FIFO (bounded for submissions and
    fault events — overflow is answered with a [backpressure] error, not
    dropped), then processes up to [drain_batch] queued requests.
    Accepted feeds are appended to the WAL, the WAL is [fsync]ed {e once
    per batch}, and only then are the acknowledgements flushed — an acked
    submission survives [kill -9].  Responses per connection are emitted
    in request order.

    Robustness (DESIGN.md §14): feeds carrying a (cid, cseq) stamp are
    deduplicated against a per-client table rebuilt from the WAL on
    recovery, so client retransmissions are at-most-once even across a
    crash.  An {!Overload} detector (queue occupancy + ack-latency EWMA
    with dwell hysteresis) drives load shedding — [Backpressure] with a
    [retry_after_ms] hint before the hard queue cap — and, when
    [degrade_to] is set, switches the live estimator under sustained
    overload and back on recovery.  Health is visible in [status]
    (estimator/degraded/shed/ack_ewma_ms) and in [Obs.Metrics]
    ([service.shed], [service.dup_acks], [service.degrade_switches],
    [service.recover_switches], [service.wal_sync_failures],
    [service.queue_depth], [service.ack_ewma_ms]).

    Shutdown: a [drain] request or SIGTERM runs the engine to the
    horizon, writes a final snapshot, answers pending clients, flushes,
    and returns.  SIGKILL at any point is recoverable: restart with the
    same state dir and the daemon replays snapshot + WAL into a fresh
    engine, resuming bit-identically (kernel determinism; see
    DESIGN.md §12). *)

type config = {
  addr : Addr.t;
  service : Config.t;
  state_dir : string option;  (** [None] = ephemeral (no durability) *)
  queue_cap : int;  (** bound on queued submissions + faults *)
  snapshot_every : int;  (** auto-snapshot period in accepted records; 0 = only on request/drain *)
  drain_batch : int;
      (** max {e feed} requests entering the engine per loop iteration;
          rejects and control requests are answered without consuming
          the budget (shedding must stay cheap under the flood that
          caused it) *)
  degrade_to : string option;
      (** estimator spec to switch to under sustained overload (e.g.
          ["rand:0.1,0.9"]); [None] disables degraded mode.  The switch —
          and the switch back on recovery — is logged as a [Mode] WAL
          record and enacted by rebuilding the engine from the full
          record history under the new estimator, so crash recovery
          reproduces it bit-identically. *)
  overload : Overload.config;  (** detector thresholds and dwell times *)
}

val make_config :
  ?state_dir:string ->
  ?queue_cap:int ->
  ?snapshot_every:int ->
  ?drain_batch:int ->
  ?degrade_to:string ->
  ?overload:Overload.config ->
  addr:Addr.t ->
  service:Config.t ->
  unit ->
  config
(** Defaults: queue_cap 1024, snapshot_every 4096, drain_batch 256, no
    degraded mode, {!Overload.default} thresholds. *)

val run : ?ready:(unit -> unit) -> config -> (unit, string) result
(** Bind, recover, serve until drained.  [ready] fires once the socket is
    listening and recovery is complete (used by tests and by [serve] to
    print the listening line).  When the state dir holds a config from a
    previous life, the {e recovered} config wins over [config.service]
    (the durable identity must match the log being replayed); a note goes
    to stderr when they differ.  Errors (bind failure, corrupt state dir)
    come back as one-line messages. *)
