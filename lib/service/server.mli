(** The scheduler daemon: a [select]-driven router in front of one
    {!Shard} per org-group.

    The service partitions along {!Partition}'s contiguous org-groups —
    the one boundary pooled scheduling does {e not} couple across (the
    paper's cooperative game is played within a consortium; separate
    groups are separate games).  Each group owns its own {!Online.t}
    engine, WAL segment, dedupe table, and overload detector; [shards]
    worker domains execute the groups (group [g] on worker [g mod W]).
    With one worker — the default — everything runs inline on the router
    thread and the daemon behaves exactly like the pre-sharding
    single-threaded server: requests are admitted in a single global
    arrival order per group, so each group's engine sees one canonical
    event stream regardless of how many clients race.

    Per iteration the router: accepts connections, reads available
    bytes, splits complete lines, and routes each feed to its org's
    group (bounded per-group admission — overflow is answered with a
    [backpressure] error, not dropped).  Control requests ([status],
    [psi], [snapshot], [drain]) are broadcast to every group and their
    parts merged: clocks by max, counters by sum, per-org arrays
    scattered back into global indexing.  Responses per connection are
    emitted in request order (a reorder buffer absorbs cross-shard
    completion races).

    Durability is per group, with group commit: accepted feeds are
    appended to the group's WAL segment and their acks {e held} until
    one [fsync] covers the batch — immediately when [commit_interval] is
    0 (the pre-sharding fsync-per-batch behaviour), else when the oldest
    held ack is [commit_interval] seconds old or [drain_batch] acks are
    held.  Either way no ack reaches a client before its record is
    durable: an acked submission survives [kill -9].

    Robustness (DESIGN.md §14) is unchanged per group: (cid, cseq)
    dedupe rebuilt from the WAL on recovery; overload detection driving
    shedding and (with [degrade_to]) estimator degradation — both now
    per group, so one hot org-group sheds or degrades while the others
    stay healthy.  Health is visible in [status] (estimator/degraded/
    shed/ack_ewma_ms/groups/shards/fsyncs) and in [Obs.Metrics]
    ([service.shed], [service.dup_acks], [service.degrade_switches],
    [service.recover_switches], [service.wal_sync_failures],
    [service.fsync_total], [service.acks_total], [service.queue_depth],
    [service.ack_ewma_ms]).

    Shutdown: a [drain] request or SIGTERM runs every group's engine to
    the horizon, writes final snapshots, answers pending clients,
    flushes, and returns.  SIGKILL at any point is recoverable: restart
    with the same state dir and every segment replays snapshot + WAL
    into a fresh engine, resuming bit-identically (kernel determinism;
    see DESIGN.md §12 and §15). *)

type config = {
  addr : Addr.t;
  service : Config.t;
      (** [service.groups] fixes the org-group partition — the semantic,
          durable part of sharding (it shapes the WAL layout).  [shards]
          below is pure execution and can change between runs. *)
  state_dir : string option;  (** [None] = ephemeral (no durability) *)
  queue_cap : int;
      (** bound on queued submissions + faults, divided evenly across
          org-groups (each group's bound is [queue_cap / groups]) *)
  snapshot_every : int;  (** auto-snapshot period in accepted records per group; 0 = only on request/drain *)
  drain_batch : int;
      (** max {e feed} requests entering a group's engine per pump;
          rejects and control requests are answered without consuming
          the budget (shedding must stay cheap under the flood that
          caused it).  Also the held-ack count that forces an early
          group commit. *)
  degrade_to : string option;
      (** estimator spec to switch to under sustained overload (e.g.
          ["rand:0.1,0.9"]); [None] disables degraded mode.  The switch —
          and the switch back on recovery — is logged as a [Mode] WAL
          record in the affected group's segment and enacted by
          rebuilding that group's engine from its full record history
          under the new estimator, so crash recovery reproduces it
          bit-identically. *)
  overload : Overload.config;  (** detector thresholds and dwell times *)
  shards : int;
      (** worker domains executing the org-groups, clamped to
          [1 <= shards <= groups].  1 (the default) runs everything
          inline on the router thread — no domains, the pre-sharding
          behaviour.  Scheduling state is bit-identical across any
          [shards] value for a fixed [groups]: the partition, not the
          execution, decides which engine sees which event. *)
  commit_interval : float;
      (** group-commit window in seconds; 0 (the default) fsyncs every
          pump exactly as the pre-sharding server did.  Positive values
          bound the extra ack latency while letting one fsync cover many
          acks ([service.fsync_total] stays well below
          [service.acks_total] under load). *)
}

val make_config :
  ?state_dir:string ->
  ?queue_cap:int ->
  ?snapshot_every:int ->
  ?drain_batch:int ->
  ?degrade_to:string ->
  ?overload:Overload.config ->
  ?shards:int ->
  ?commit_interval:float ->
  addr:Addr.t ->
  service:Config.t ->
  unit ->
  config
(** Defaults: queue_cap 1024, snapshot_every 4096, drain_batch 256, no
    degraded mode, {!Overload.default} thresholds, shards 1,
    commit_interval 0. *)

val run : ?ready:(unit -> unit) -> config -> (unit, string) result
(** Bind, recover, serve until drained.  [ready] fires once the socket
    is listening and recovery is complete (used by tests and by [serve]
    to print the listening line).  When the state dir holds a config
    from a previous life, the {e recovered} config wins over
    [config.service] — including its [groups] count, which also fixes
    the on-disk layout (flat for 1 group, [wal-<g>/] segments
    otherwise); a note goes to stderr when they differ.  Errors (bind
    failure, corrupt or inconsistent segments) come back as one-line
    messages. *)
