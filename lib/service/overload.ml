type config = {
  queue_high : float;
  queue_low : float;
  ack_high_ms : float;
  ack_low_ms : float;
  alpha : float;
  trip_ms : float;
  recover_ms : float;
}

let default =
  {
    queue_high = 0.8;
    queue_low = 0.3;
    ack_high_ms = 50.0;
    ack_low_ms = 10.0;
    alpha = 0.2;
    trip_ms = 100.0;
    recover_ms = 500.0;
  }

type level = Normal | Overloaded

type t = {
  cfg : config;
  now_ms : unit -> float;
  mutable ewma : float option;
  mutable occupancy : float;
  mutable lvl : level;
  mutable pressure_since : float option;  (* high signal continuously since *)
  mutable calm_since : float option;  (* low signal continuously since *)
}

let create ?(config = default) ~now_ms () =
  {
    cfg = config;
    now_ms;
    ewma = None;
    occupancy = 0.0;
    lvl = Normal;
    pressure_since = None;
    calm_since = None;
  }

let ack_ewma_ms t = Option.value ~default:0.0 t.ewma
let level t = t.lvl

(* Roll per-shard detectors up to one service health: any overloaded
   shard makes the service overloaded (it is the one clients of that
   org-group experience). *)
let worst levels =
  if List.exists (fun l -> l = Overloaded) levels then Overloaded else Normal

(* Either signal high => pressure; both low => calm; in between, neither
   dwell clock runs (the current level holds). *)
let evaluate t =
  let now = t.now_ms () in
  let ewma = ack_ewma_ms t in
  let high =
    t.occupancy >= t.cfg.queue_high || ewma >= t.cfg.ack_high_ms
  in
  let low = t.occupancy <= t.cfg.queue_low && ewma <= t.cfg.ack_low_ms in
  if high then begin
    t.calm_since <- None;
    match t.pressure_since with
    | None -> t.pressure_since <- Some now
    | Some since ->
        if t.lvl = Normal && now -. since >= t.cfg.trip_ms then
          t.lvl <- Overloaded
  end
  else if low then begin
    t.pressure_since <- None;
    match t.calm_since with
    | None -> t.calm_since <- Some now
    | Some since ->
        if t.lvl = Overloaded && now -. since >= t.cfg.recover_ms then
          t.lvl <- Normal
  end
  else begin
    t.pressure_since <- None;
    t.calm_since <- None
  end

let observe_ack t ~latency_ms =
  let latency_ms = Float.max 0.0 latency_ms in
  (t.ewma <-
     (match t.ewma with
     | None -> Some latency_ms
     | Some e -> Some (((1.0 -. t.cfg.alpha) *. e) +. (t.cfg.alpha *. latency_ms))));
  evaluate t

let observe_queue t ~depth ~cap =
  t.occupancy <-
    (if cap <= 0 then 0.0 else float_of_int depth /. float_of_int cap);
  evaluate t

let retry_after_ms t =
  let ms = 4.0 *. ack_ewma_ms t in
  int_of_float (Float.min 2000.0 (Float.max 25.0 ms))
