let wire_limits = { Obs.Json.max_depth = 32; max_bytes = 1 lsl 20 }
let max_line = wire_limits.Obs.Json.max_bytes

type request =
  | Submit of {
      org : int;
      user : int;
      release : int;
      size : int;
      cid : int;
      cseq : int;
      trace : int;
    }
  | Fault of {
      time : int;
      event : Faults.Event.t;
      cid : int;
      cseq : int;
      trace : int;
    }
  | Endow of {
      time : int;
      event : Federation.Event.t;
      cid : int;
      cseq : int;
      trace : int;
    }
  | Status
  | Psi
  | Snapshot
  | Drain of { detail : bool }
  | Metrics
  | Trace of { limit : int }

let default_trace_limit = 3000

type status = {
  now : int;
  frontier : int;
  horizon : int;
  orgs : int;
  machines : int;
  accepted : int;
  rejected : int;
  queue_depth : int;
  queue_cap : int;
  draining : bool;
  waiting : int array;
  stats : Kernel.Stats.t;
  job_wait : Obs.Metrics.summary option;
  estimator : string;
  degraded : bool;
  shed : int;
  ack_ewma_ms : float;
  groups : int;
  shards : int;
  fsyncs : int;
}

type drain_report = {
  d_now : int;
  d_psi_scaled : int array;
  d_parts : int array;
  d_stats : Kernel.Stats.t;
  d_schedule : (int * int * int * int * int) list option;
}

type error_code =
  | Parse
  | Bad_request
  | Backpressure
  | Draining
  | Wal_error
  | Unsupported

type response =
  | Submit_ok of { seq : int; org : int; index : int; now : int }
  | Fault_ok of { seq : int; now : int }
  | Endow_ok of { seq : int; now : int }
  | Status_ok of status
  | Psi_ok of { now : int; psi_scaled : int array; parts : int array }
  | Snapshot_ok of { seq : int; path : string }
  | Drain_ok of drain_report
  | Metrics_ok of { metrics : Obs.Json.t }
  | Trace_ok of { events : int; dropped : int; trace : Obs.Json.t }
  | Error of { code : error_code; msg : string; retry_after_ms : int option }

let error_code_to_string = function
  | Parse -> "parse"
  | Bad_request -> "bad-request"
  | Backpressure -> "backpressure"
  | Draining -> "draining"
  | Wal_error -> "wal-error"
  | Unsupported -> "unsupported"

let error_code_of_string = function
  | "parse" -> Some Parse
  | "bad-request" -> Some Bad_request
  | "backpressure" -> Some Backpressure
  | "draining" -> Some Draining
  | "wal-error" -> Some Wal_error
  | "unsupported" -> Some Unsupported
  | _ -> None

(* --- JSON helpers ------------------------------------------------------ *)

open Obs.Json

let ( let* ) = Result.bind

let int_field j name =
  match member j name with
  | Some (Int v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Error (Printf.sprintf "field %S missing" name)

let opt_int_field j name ~default =
  match member j name with
  | None -> Ok default
  | Some (Int v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let bool_field j name ~default =
  match member j name with
  | None -> Ok default
  | Some (Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let string_field j name =
  match member j name with
  | Some (String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "field %S missing" name)

let int_array_json a = List (Array.to_list (Array.map (fun v -> Int v) a))

let int_array_field j name =
  match member j name with
  | Some (List items) ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Int v :: rest -> go (v :: acc) rest
        | _ -> Error (Printf.sprintf "field %S must be a list of integers" name)
      in
      go [] items
  | Some _ | None ->
      Error (Printf.sprintf "field %S missing or not a list" name)

let float_field j name =
  match member j name with
  | Some v -> (
      match get_number v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S must be numeric" name))
  | None -> Error (Printf.sprintf "field %S missing" name)

(* One wire encoding for endowment events, shared by the [endow] request
   and the WAL's [Endow] record so the log and the socket cannot drift:
   kind join|leave|lend|reclaim, acting org, optional borrower, machine
   list omitted when empty (a readmit-all [Join] has no list). *)
let endow_event_fields event =
  let machines_field = function
    | [] -> []
    | ms -> [ ("machines", List (List.map (fun m -> Int m) ms)) ]
  in
  match event with
  | Federation.Event.Join { org; machines } ->
      (("kind", String "join") :: ("org", Int org) :: machines_field machines)
  | Federation.Event.Leave { org } ->
      [ ("kind", String "leave"); ("org", Int org) ]
  | Federation.Event.Lend { org; to_org; machines } ->
      ("kind", String "lend") :: ("org", Int org) :: ("to_org", Int to_org)
      :: machines_field machines
  | Federation.Event.Reclaim { org; machines } ->
      ("kind", String "reclaim") :: ("org", Int org)
      :: machines_field machines

let machine_list_field j =
  match member j "machines" with
  | None -> Ok []
  | Some (List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Int m :: rest -> go (m :: acc) rest
        | _ -> Error "field \"machines\" must be a list of integers"
      in
      go [] items
  | Some _ -> Error "field \"machines\" must be a list of integers"

let endow_event_of_json j =
  let* kind = string_field j "kind" in
  let* org = int_field j "org" in
  match kind with
  | "join" ->
      let* machines = machine_list_field j in
      Ok (Federation.Event.Join { org; machines })
  | "leave" -> Ok (Federation.Event.Leave { org })
  | "lend" ->
      let* to_org = int_field j "to_org" in
      let* machines = machine_list_field j in
      Ok (Federation.Event.Lend { org; to_org; machines })
  | "reclaim" ->
      let* machines = machine_list_field j in
      Ok (Federation.Event.Reclaim { org; machines })
  | k -> Error (Printf.sprintf "unknown endow kind %S" k)

let summary_json (s : Obs.Metrics.summary) =
  Obj
    [
      ("count", Int s.Obs.Metrics.count);
      ("p50", Float s.Obs.Metrics.p50);
      ("p90", Float s.Obs.Metrics.p90);
      ("p99", Float s.Obs.Metrics.p99);
      ("max", Float s.Obs.Metrics.max);
    ]

let summary_of_json j =
  let* count = int_field j "count" in
  let* p50 = float_field j "p50" in
  let* p90 = float_field j "p90" in
  let* p99 = float_field j "p99" in
  let* max = float_field j "max" in
  Ok { Obs.Metrics.count; p50; p90; p99; max }

(* --- Requests ----------------------------------------------------------- *)

(* Omitted when zero, so clients that do not opt into idempotent
   retransmission produce the same bytes as before the fields existed. *)
let client_fields cid cseq =
  if cid = 0 && cseq = 0 then []
  else [ ("cid", Int cid); ("cseq", Int cseq) ]

(* Same omitted-when-zero discipline as [client_fields]: requests without
   a trace id produce the same bytes as before the field existed. *)
let trace_field trace = if trace = 0 then [] else [ ("trace", Int trace) ]

let request_to_json = function
  | Submit { org; user; release; size; cid; cseq; trace } ->
      Obj
        ([
           ("op", String "submit");
           ("org", Int org);
           ("user", Int user);
           ("release", Int release);
           ("size", Int size);
         ]
        @ client_fields cid cseq @ trace_field trace)
  | Fault { time; event; cid; cseq; trace } ->
      let kind, machine =
        match event with
        | Faults.Event.Fail m -> ("fail", m)
        | Faults.Event.Recover m -> ("recover", m)
      in
      Obj
        ([
           ("op", String "fault");
           ("time", Int time);
           ("kind", String kind);
           ("machine", Int machine);
         ]
        @ client_fields cid cseq @ trace_field trace)
  | Endow { time; event; cid; cseq; trace } ->
      Obj
        ((("op", String "endow") :: ("time", Int time)
         :: endow_event_fields event)
        @ client_fields cid cseq @ trace_field trace)
  | Status -> Obj [ ("op", String "status") ]
  | Psi -> Obj [ ("op", String "psi") ]
  | Snapshot -> Obj [ ("op", String "snapshot") ]
  | Drain { detail } ->
      Obj [ ("op", String "drain"); ("detail", Bool detail) ]
  | Metrics -> Obj [ ("op", String "metrics") ]
  | Trace { limit } ->
      Obj [ ("op", String "trace"); ("limit", Int limit) ]

let request_of_json j =
  let* op = string_field j "op" in
  match op with
  | "submit" ->
      let* org = int_field j "org" in
      let* user = opt_int_field j "user" ~default:0 in
      let* release = int_field j "release" in
      let* size = int_field j "size" in
      let* cid = opt_int_field j "cid" ~default:0 in
      let* cseq = opt_int_field j "cseq" ~default:0 in
      let* trace = opt_int_field j "trace" ~default:0 in
      Ok (Submit { org; user; release; size; cid; cseq; trace })
  | "fault" ->
      let* time = int_field j "time" in
      let* kind = string_field j "kind" in
      let* machine = int_field j "machine" in
      let* cid = opt_int_field j "cid" ~default:0 in
      let* cseq = opt_int_field j "cseq" ~default:0 in
      let* trace = opt_int_field j "trace" ~default:0 in
      let* event =
        match kind with
        | "fail" -> Ok (Faults.Event.Fail machine)
        | "recover" -> Ok (Faults.Event.Recover machine)
        | k -> Error (Printf.sprintf "unknown fault kind %S" k)
      in
      Ok (Fault { time; event; cid; cseq; trace })
  | "endow" ->
      let* time = int_field j "time" in
      let* event = endow_event_of_json j in
      let* cid = opt_int_field j "cid" ~default:0 in
      let* cseq = opt_int_field j "cseq" ~default:0 in
      let* trace = opt_int_field j "trace" ~default:0 in
      Ok (Endow { time; event; cid; cseq; trace })
  | "status" -> Ok Status
  | "psi" -> Ok Psi
  | "snapshot" -> Ok Snapshot
  | "drain" ->
      let* detail = bool_field j "detail" ~default:false in
      Ok (Drain { detail })
  | "metrics" -> Ok Metrics
  | "trace" ->
      let* limit = opt_int_field j "limit" ~default:default_trace_limit in
      if limit < 1 then Error "field \"limit\" must be >= 1"
      else Ok (Trace { limit })
  | op -> Error (Printf.sprintf "unknown op %S" op)

(* --- Responses ---------------------------------------------------------- *)

let status_json s =
  let fields =
    [
      ("ok", Bool true);
      ("op", String "status");
      ("now", Int s.now);
      ("frontier", Int s.frontier);
      ("horizon", Int s.horizon);
      ("orgs", Int s.orgs);
      ("machines", Int s.machines);
      ("accepted", Int s.accepted);
      ("rejected", Int s.rejected);
      ("queue_depth", Int s.queue_depth);
      ("queue_cap", Int s.queue_cap);
      ("draining", Bool s.draining);
      ("waiting", int_array_json s.waiting);
      ("stats", Kernel.Stats.json s.stats);
      ("estimator", String s.estimator);
      ("degraded", Bool s.degraded);
      ("shed", Int s.shed);
      ("ack_ewma_ms", Float s.ack_ewma_ms);
      ("groups", Int s.groups);
      ("shards", Int s.shards);
      ("fsyncs", Int s.fsyncs);
    ]
  in
  let fields =
    match s.job_wait with
    | None -> fields
    | Some sum -> fields @ [ ("job_wait", summary_json sum) ]
  in
  Obj fields

let status_of_json j =
  let* now = int_field j "now" in
  let* frontier = int_field j "frontier" in
  let* horizon = int_field j "horizon" in
  let* orgs = int_field j "orgs" in
  let* machines = int_field j "machines" in
  let* accepted = int_field j "accepted" in
  let* rejected = int_field j "rejected" in
  let* queue_depth = int_field j "queue_depth" in
  let* queue_cap = int_field j "queue_cap" in
  let* draining = bool_field j "draining" ~default:false in
  let* waiting = int_array_field j "waiting" in
  let* stats =
    match member j "stats" with
    | Some sj -> Kernel.Stats.of_json sj
    | None -> Error "field \"stats\" missing"
  in
  let* job_wait =
    match member j "job_wait" with
    | None -> Ok None
    | Some sj -> Result.map Option.some (summary_of_json sj)
  in
  let* estimator =
    match member j "estimator" with
    | None -> Ok ""
    | Some (String s) -> Ok s
    | Some _ -> Error "field \"estimator\" must be a string"
  in
  let* degraded = bool_field j "degraded" ~default:false in
  let* shed = opt_int_field j "shed" ~default:0 in
  let* ack_ewma_ms =
    match member j "ack_ewma_ms" with
    | None -> Ok 0.0
    | Some v -> (
        match get_number v with
        | Some f -> Ok f
        | None -> Error "field \"ack_ewma_ms\" must be numeric")
  in
  (* defaults keep pre-sharding daemons parseable *)
  let* groups = opt_int_field j "groups" ~default:1 in
  let* shards = opt_int_field j "shards" ~default:1 in
  let* fsyncs = opt_int_field j "fsyncs" ~default:0 in
  Ok
    (Status_ok
       {
         now;
         frontier;
         horizon;
         orgs;
         machines;
         accepted;
         rejected;
         queue_depth;
         queue_cap;
         draining;
         waiting;
         stats;
         job_wait;
         estimator;
         degraded;
         shed;
         ack_ewma_ms;
         groups;
         shards;
         fsyncs;
       })

let schedule_rows_json rows =
  List
    (List.map
       (fun (org, index, start, machine, duration) ->
         Obj
           [
             ("org", Int org);
             ("index", Int index);
             ("start", Int start);
             ("machine", Int machine);
             ("duration", Int duration);
           ])
       rows)

let schedule_rows_of_json j =
  match j with
  | List items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | row :: rest ->
            let* org = int_field row "org" in
            let* index = int_field row "index" in
            let* start = int_field row "start" in
            let* machine = int_field row "machine" in
            let* duration = int_field row "duration" in
            go ((org, index, start, machine, duration) :: acc) rest
      in
      go [] items
  | _ -> Error "field \"schedule\" must be a list"

let drain_json r =
  let fields =
    [
      ("ok", Bool true);
      ("op", String "drain");
      ("now", Int r.d_now);
      ("psi_scaled", int_array_json r.d_psi_scaled);
      ("parts", int_array_json r.d_parts);
      ("stats", Kernel.Stats.json r.d_stats);
    ]
  in
  let fields =
    match r.d_schedule with
    | None -> fields
    | Some rows -> fields @ [ ("schedule", schedule_rows_json rows) ]
  in
  Obj fields

let drain_of_json j =
  let* d_now = int_field j "now" in
  let* d_psi_scaled = int_array_field j "psi_scaled" in
  let* d_parts = int_array_field j "parts" in
  let* d_stats =
    match member j "stats" with
    | Some sj -> Kernel.Stats.of_json sj
    | None -> Error "field \"stats\" missing"
  in
  let* d_schedule =
    match member j "schedule" with
    | None -> Ok None
    | Some sj -> Result.map Option.some (schedule_rows_of_json sj)
  in
  Ok (Drain_ok { d_now; d_psi_scaled; d_parts; d_stats; d_schedule })

let response_to_json = function
  | Submit_ok { seq; org; index; now } ->
      Obj
        [
          ("ok", Bool true);
          ("op", String "submit");
          ("seq", Int seq);
          ("org", Int org);
          ("index", Int index);
          ("now", Int now);
        ]
  | Fault_ok { seq; now } ->
      Obj
        [
          ("ok", Bool true);
          ("op", String "fault");
          ("seq", Int seq);
          ("now", Int now);
        ]
  | Endow_ok { seq; now } ->
      Obj
        [
          ("ok", Bool true);
          ("op", String "endow");
          ("seq", Int seq);
          ("now", Int now);
        ]
  | Status_ok s -> status_json s
  | Psi_ok { now; psi_scaled; parts } ->
      Obj
        [
          ("ok", Bool true);
          ("op", String "psi");
          ("now", Int now);
          ("psi_scaled", int_array_json psi_scaled);
          ("parts", int_array_json parts);
        ]
  | Snapshot_ok { seq; path } ->
      Obj
        [
          ("ok", Bool true);
          ("op", String "snapshot");
          ("seq", Int seq);
          ("path", String path);
        ]
  | Drain_ok r -> drain_json r
  | Metrics_ok { metrics } ->
      Obj [ ("ok", Bool true); ("op", String "metrics"); ("metrics", metrics) ]
  | Trace_ok { events; dropped; trace } ->
      Obj
        [
          ("ok", Bool true);
          ("op", String "trace");
          ("events", Int events);
          ("dropped", Int dropped);
          ("trace", trace);
        ]
  | Error { code; msg; retry_after_ms } ->
      Obj
        ([
           ("ok", Bool false);
           ("code", String (error_code_to_string code));
           ("msg", String msg);
         ]
        @
        match retry_after_ms with
        | None -> []
        | Some ms -> [ ("retry_after_ms", Int ms) ])

let response_of_json j =
  let* ok =
    match member j "ok" with
    | Some (Bool b) -> Ok b
    | Some _ | None -> Error "field \"ok\" missing or not a boolean"
  in
  if not ok then
    let* code_s = string_field j "code" in
    let* msg = string_field j "msg" in
    let* retry_after_ms =
      match member j "retry_after_ms" with
      | None -> Ok None
      | Some (Int ms) -> Ok (Some ms)
      | Some _ -> Error "field \"retry_after_ms\" must be an integer"
    in
    match error_code_of_string code_s with
    | Some code -> Ok (Error { code; msg; retry_after_ms })
    | None -> Result.Error (Printf.sprintf "unknown error code %S" code_s)
  else
    let* op = string_field j "op" in
    match op with
    | "submit" ->
        let* seq = int_field j "seq" in
        let* org = int_field j "org" in
        let* index = int_field j "index" in
        let* now = int_field j "now" in
        Ok (Submit_ok { seq; org; index; now })
    | "fault" ->
        let* seq = int_field j "seq" in
        let* now = int_field j "now" in
        Ok (Fault_ok { seq; now })
    | "endow" ->
        let* seq = int_field j "seq" in
        let* now = int_field j "now" in
        Ok (Endow_ok { seq; now })
    | "status" -> status_of_json j
    | "psi" ->
        let* now = int_field j "now" in
        let* psi_scaled = int_array_field j "psi_scaled" in
        let* parts = int_array_field j "parts" in
        Ok (Psi_ok { now; psi_scaled; parts })
    | "snapshot" ->
        let* seq = int_field j "seq" in
        let* path = string_field j "path" in
        Ok (Snapshot_ok { seq; path })
    | "drain" -> drain_of_json j
    | "metrics" -> (
        match member j "metrics" with
        | Some metrics -> Ok (Metrics_ok { metrics })
        | None -> Error "field \"metrics\" missing")
    | "trace" -> (
        let* events = int_field j "events" in
        let* dropped = opt_int_field j "dropped" ~default:0 in
        match member j "trace" with
        | Some trace -> Ok (Trace_ok { events; dropped; trace })
        | None -> Error "field \"trace\" missing")
    | op -> Error (Printf.sprintf "unknown response op %S" op)

(* --- Lines -------------------------------------------------------------- *)

let to_line json = to_string json ^ "\n"

let of_line of_json line =
  match parse ~limits:wire_limits line with
  | Result.Error e -> Result.Error (error_to_string e)
  | Ok j -> of_json j

let request_to_line r = to_line (request_to_json r)
let request_of_line s = of_line request_of_json s
let response_to_line r = to_line (response_to_json r)
let response_of_line s = of_line response_of_json s
