(** Blocking protocol client: one connection, synchronous request/response.

    The daemon answers requests in order per connection, so a synchronous
    client needs no correlation ids — write one line, read one line. *)

type t

val connect : Addr.t -> (t, string) result
(** Connect (TCP sets [TCP_NODELAY]: the protocol is one small line per
    round trip, and Nagle would serialize the load generator's pace). *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request line and block for the response line.  [Error] means
    a transport failure (connection refused/reset, oversized or
    unparseable response), not a protocol-level rejection — those arrive
    as [Ok (Error {code; msg})]. *)

val close : t -> unit
