(** Blocking protocol client: one connection, synchronous request/response.

    The daemon answers requests in order per connection, so a synchronous
    client needs no correlation ids — write one line, read one line.

    Every operation takes a deadline.  A stalled or half-dead server
    (SIGSTOP, network partition, a chaos-injected hang) turns into a
    {!Timeout} error instead of blocking the caller forever; the caller
    decides whether to retry on a fresh connection.  {!Resilient} is that
    caller for the common case: jittered exponential backoff
    ({!Retry.policy}) over transient errors and [Backpressure]
    rejections, with at-most-once semantics via (cid, cseq) stamping so a
    retransmitted feed is never applied twice. *)

type error =
  | Timeout of string  (** the named phase (connect/write/read) hit its deadline *)
  | Closed  (** server closed the connection *)
  | Refused of string  (** connection could not be established *)
  | Transport of string  (** reset, oversized or unparseable response, ... *)

val error_to_string : error -> string

val is_transient : error -> bool
(** Worth retrying on a fresh connection.  Everything above qualifies —
    even a parse error, since retransmission is made safe by server-side
    dedupe — so this currently always holds; it exists to keep the
    classification in one place. *)

type t

val connect : ?timeout_s:float -> Addr.t -> (t, error) result
(** Connect with a deadline (default 5 s; [0] or negative = wait
    forever).  TCP sets [TCP_NODELAY]: the protocol is one small line per
    round trip, and Nagle would serialize the load generator's pace. *)

val request :
  ?timeout_s:float -> t -> Protocol.request -> (Protocol.response, error) result
(** Send one request line and block for the response line, each phase
    bounded by [timeout_s] (default 5 s).  [Error] means a transport
    failure, not a protocol-level rejection — those arrive as
    [Ok (Error {code; msg; _})]. *)

val close : t -> unit

(** {2 Retrying client} *)

module Resilient : sig
  type conn
  (** A lazily-(re)connected endpoint.  Connections are made on first
      use and remade after any transient error, so a [conn] survives a
      server crash + restart transparently (within its retry budget). *)

  type stats = {
    attempts : int;  (** wire attempts, including first tries *)
    retries : int;  (** re-sends after a transient transport error *)
    backpressured : int;  (** [Backpressure] rejections absorbed *)
    reconnects : int;  (** fresh connections after a failure *)
    gave_up : int;  (** requests abandoned with the budget exhausted *)
  }

  val create :
    ?policy:Retry.policy ->
    ?timeout_s:float ->
    ?cid:int ->
    rng:Fstats.Rng.t ->
    Addr.t ->
    conn
  (** [cid] defaults to a value derived from [rng]; pass it explicitly to
      keep an identity stable across client restarts. *)

  val cid : conn -> int

  val call : conn -> Protocol.request -> (Protocol.response, error) result
  (** Send with retries.  [Submit]/[Fault] requests are stamped with this
      connection's [cid] and the next [cseq] {e once}, before the first
      attempt — every retransmission carries the same stamp, so the
      server's dedupe table makes the retry loop at-most-once.  Retries
      cover transient transport errors (reconnecting first) and
      [Backpressure] rejections (honoring the server's [retry_after_ms]
      hint).  Other protocol errors return immediately.  [Error e] means
      the retry budget ran out; the request may or may not have been
      applied — only a re-send with the same stamp could tell. *)

  val stats : conn -> stats
  val close : conn -> unit
end
