type policy = {
  max_attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  multiplier : float;
  jitter : float;
  budget_ms : float;
}

let default =
  {
    max_attempts = 8;
    base_delay_ms = 25.0;
    max_delay_ms = 2_000.0;
    multiplier = 2.0;
    jitter = 0.25;
    budget_ms = 30_000.0;
  }

let policy ?(max_attempts = default.max_attempts)
    ?(base_delay_ms = default.base_delay_ms)
    ?(max_delay_ms = default.max_delay_ms) ?(multiplier = default.multiplier)
    ?(jitter = default.jitter) ?(budget_ms = default.budget_ms) () =
  {
    max_attempts = max 1 max_attempts;
    base_delay_ms = Float.max 0.0 base_delay_ms;
    max_delay_ms = Float.max 0.0 max_delay_ms;
    multiplier = Float.max 1.0 multiplier;
    jitter = Float.min 0.999 (Float.max 0.0 jitter);
    budget_ms = (if budget_ms <= 0.0 then infinity else budget_ms);
  }

type verdict = Sleep of float | Give_up

let next p ~rng ~attempt ~elapsed_ms ~retry_after_ms =
  if attempt >= p.max_attempts then Give_up
  else
    let backoff =
      Float.min p.max_delay_ms
        (p.base_delay_ms *. (p.multiplier ** float_of_int (max 0 (attempt - 1))))
    in
    let floor_ms =
      match retry_after_ms with
      | Some ms when ms > 0 -> float_of_int ms
      | Some _ | None -> 0.0
    in
    let delay = Float.max backoff floor_ms in
    let delay =
      if p.jitter = 0.0 then delay
      else
        delay *. (1.0 -. p.jitter +. (2.0 *. p.jitter *. Fstats.Rng.unit_float rng))
    in
    if elapsed_ms +. delay > p.budget_ms then Give_up else Sleep delay
