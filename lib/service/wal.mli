(** Durability: a write-ahead log of accepted inputs plus periodic
    snapshots.

    The daemon never serializes engine or policy state — REF's
    sub-coalition simulations alone would make that intractable.  Instead
    it logs the {e inputs} (accepted submissions and fault events, each
    stamped with a monotone sequence number) and relies on kernel
    determinism: replaying the same inputs into a fresh {!Online.t} built
    from the same {!Config.t} reproduces the same state bit-for-bit.  A
    snapshot is therefore just a compaction of the log — config, the last
    sequence number it covers, and the accepted records — not a memory
    image.

    Layout under the state directory:
    - [wal.ndjson] — header line [{"fairsched_wal":1,"config":{...}}]
      followed by one record per line;
    - [snapshot.json] — the latest snapshot, written to a temp file and
      renamed into place (atomic on POSIX).

    Crash windows: a torn final WAL line (power cut mid-append) is
    dropped silently; a corrupt {e middle} line is a hard error (the log
    is damaged, not merely truncated).  A crash between snapshot rename
    and WAL truncation leaves records with [seq <= last_seq] in the log —
    {!recover} drops them by sequence number.  The server [fsync]s the
    WAL before acknowledging a batch, so an acked submission is always
    recovered. *)

type record =
  | Submit of { seq : int; org : int; user : int; release : int; size : int }
  | Fault of { seq : int; time : int; event : Faults.Event.t }

val seq_of : record -> int
val record_to_json : record -> Obs.Json.t
val record_of_json : Obs.Json.t -> (record, string) result

val wal_path : dir:string -> string
val snapshot_path : dir:string -> string

(** {2 Writing} *)

type writer

val create : dir:string -> config:Config.t -> (writer, string) result
(** Truncate/create [wal.ndjson], write and [fsync] the header line.
    Errors are one-line messages (unwritable directory, etc.). *)

val append : writer -> record -> unit
(** Buffered; call {!sync} before acknowledging. *)

val sync : writer -> (unit, string) result
(** Flush the buffer and [fsync].  One call covers every {!append} since
    the last — the server batches: append the whole admission batch, sync
    once, then ack. *)

val close : writer -> unit

(** {2 Snapshots} *)

type snapshot = {
  config : Config.t;
  last_seq : int;  (** highest sequence number the snapshot covers *)
  records : record list;  (** every accepted record, oldest first *)
}

val write_snapshot : dir:string -> snapshot -> (string, string) result
(** Write [snapshot.json] via temp-file + rename; returns the final path.
    The caller recreates the WAL ({!create}) afterwards to compact. *)

(** {2 Recovery} *)

type recovery = {
  r_config : Config.t option;  (** [None] when the state dir is empty *)
  r_records : record list;  (** snapshot records + WAL tail, deduped, oldest first *)
  r_last_seq : int;  (** 0 when empty *)
}

val recover : dir:string -> (recovery, string) result
(** Read snapshot and WAL, drop WAL records already covered by the
    snapshot ([seq <= last_seq]), verify the two agree on the config
    ({!Config.equal}), tolerate a torn final WAL line. *)
