(** Durability: a write-ahead log of accepted inputs plus periodic
    snapshots.

    The daemon never serializes engine or policy state — REF's
    sub-coalition simulations alone would make that intractable.  Instead
    it logs the {e inputs} (accepted submissions and fault events, each
    stamped with a monotone sequence number) and relies on kernel
    determinism: replaying the same inputs into a fresh {!Online.t} built
    from the same {!Config.t} reproduces the same state bit-for-bit.  A
    snapshot is therefore just a compaction of the log — config, the last
    sequence number it covers, and the accepted records — not a memory
    image.

    Layout under the state directory:
    - [wal.ndjson] — header line [{"fairsched_wal":1,"config":{...}}]
      followed by one record per line;
    - [snapshot.json] — the latest snapshot, written to a temp file and
      renamed into place (atomic on POSIX).

    Every durability-critical syscall goes through {!Chaos.Fs}, so tests
    can fail or tear any write/fsync/rename and die at any named crash
    point deterministically.  Sites used here: [wal-open], [wal-header],
    [wal-append], [wal-fsync], [wal-truncate], [snap-open], [snap-write],
    [snap-fsync], [snap-rename], [dir-fsync]; points: [before-wal-append],
    [after-wal-append], [after-wal-fsync], [after-snapshot-write],
    [before-snapshot-rename], [after-snapshot-rename].

    Crash and corruption windows (DESIGN.md §14):
    - a torn final WAL line (power cut mid-append) is dropped and
      reported in {!check} as torn-tail diagnosis;
    - a corrupt {e middle} line, a sequence regression/duplicate, or a
      damaged snapshot refuses to boot with a typed {!boot_error} naming
      the file, line, and byte offset — the log is damaged, not merely
      truncated, and guessing could double-apply or drop acked work;
    - a failed or torn {e append} (ENOSPC, EIO, crash mid-write) is
      repaired on the next {!sync}: the writer tracks the last durable
      offset and truncates back to it before rewriting, so a retried
      batch can never leave interleaved half-records;
    - a crash between snapshot rename and WAL truncation leaves records
      with [seq <= last_seq] in the log — {!recover} drops them by
      sequence number; an orphaned [snapshot.json.tmp] is deleted.

    The server [fsync]s the WAL before acknowledging a batch, so an acked
    submission is always recovered. *)

type record =
  | Submit of {
      seq : int;
      org : int;
      user : int;
      release : int;
      size : int;
      cid : int;  (** client id for idempotent retransmission; 0 = none *)
      cseq : int;  (** client-chosen sequence under [cid]; 0 = none *)
    }
  | Fault of { seq : int; time : int; event : Faults.Event.t; cid : int; cseq : int }
  | Endow of {
      seq : int;
      time : int;
      event : Federation.Event.t;
      cid : int;
      cseq : int;
    }
      (** an accepted endowment event (consortium membership / machine
          ownership change), encoded on disk exactly as on the wire
          ({!Protocol.endow_event_fields}); replay feeds it back through
          {!Online.endow} so recovered ownership is bit-identical *)
  | Mode of { seq : int; estimator : string }
      (** the server switched the live estimator (degraded mode); logged
          so WAL replay reproduces the switch deterministically *)

val seq_of : record -> int
val record_to_json : record -> Obs.Json.t
val record_of_json : Obs.Json.t -> (record, string) result

val is_feed : record -> bool
(** [Submit]/[Fault]/[Endow] — records that feed the engine (a [Mode]
    switch does not count toward accepted submissions). *)

val wal_path : dir:string -> string
val snapshot_path : dir:string -> string

(** {2 Segment layout — sharded state dirs}

    A single-group daemon keeps the flat layout described above; a
    multi-group daemon ([Config.groups > 1]) gives every org-group its
    own segment subdirectory [wal-<g>/] containing the same two files.
    Each segment header stores the {e global} config, so any one segment
    identifies the whole partition, and recovery cross-checks that all
    segments agree. *)

val segment_dir : dir:string -> group:int -> string
(** [dir/wal-<group>]. *)

val segment_site_prefix : group:int -> string
(** The {!Chaos.Fs} site/point prefix of a segment's syscalls, ["g<g>/"]
    — a fault plan like [eio@g1/wal-fsync:1+] hits only that shard's
    WAL. Single-group daemons use no prefix, so pre-sharding plans keep
    working. *)

val segments : dir:string -> int list
(** Group ids of the [wal-<g>/] segment subdirectories found under a
    state dir, sorted; [[]] for a flat (or empty, or missing) dir. *)

(** {2 Typed boot errors} *)

type corruption = {
  c_file : string;
  c_line : int;  (** 1-based line number of the damage *)
  c_offset : int;  (** byte offset of that line's start *)
  c_reason : string;
}

type boot_error =
  | Io of string  (** unreadable file, permission, short read *)
  | Corrupt of corruption  (** refuse-to-start: damaged log or snapshot *)
  | Mismatch of string  (** snapshot and WAL disagree on the config *)

val boot_error_to_string : boot_error -> string

(** {2 Writing} *)

type writer

val create :
  ?site_prefix:string -> dir:string -> config:Config.t -> unit ->
  (writer, string) result
(** Truncate/create [wal.ndjson], write and [fsync] the header line.
    [site_prefix] (default [""]) prefixes every {!Chaos.Fs} site and
    point this writer touches — see {!segment_site_prefix}.  Errors are
    one-line messages (unwritable directory, etc.). *)

val append : writer -> record -> unit
(** Buffered; call {!sync} before acknowledging. *)

val sync : writer -> (unit, string) result
(** Flush the buffer and [fsync].  One call covers every {!append} since
    the last successful sync — the server batches: append the whole
    admission batch, sync once, then ack.  On failure (ENOSPC, EIO, torn
    write) the buffered records are {e kept} and the file is repaired
    back to the last durable offset on the next call, so a later retry
    can still make them durable without corrupting the log. *)

val pending : writer -> bool
(** Appended records not yet known durable (buffered, or written but not
    fsynced). *)

val close : writer -> unit

(** {2 Snapshots} *)

type snapshot = {
  config : Config.t;
  last_seq : int;  (** highest sequence number the snapshot covers *)
  records : record list;  (** every accepted record, oldest first *)
}

val write_snapshot :
  ?site_prefix:string -> dir:string -> snapshot -> (string, string) result
(** Write [snapshot.json] via temp-file + [fsync] + rename; returns the
    final path.  The caller recreates the WAL ({!create}) afterwards to
    compact. *)

(** {2 Recovery} *)

type recovery = {
  r_config : Config.t option;  (** [None] when the state dir is empty *)
  r_records : record list;  (** snapshot records + WAL tail, deduped, oldest first *)
  r_last_seq : int;  (** 0 when empty *)
}

val recover : dir:string -> (recovery, boot_error) result
(** Read snapshot and WAL, drop WAL records already covered by the
    snapshot ([seq <= last_seq]), verify the two agree on the config
    ({!Config.equal}), tolerate a torn final WAL line, delete an orphaned
    [snapshot.json.tmp].  Sequence numbers must be strictly increasing
    within each file — a regression or duplicate is {!Corrupt}. *)

(** {2 Offline inspection — [fairsched ctl wal-check]} *)

type check_report = {
  ck_kind : [ `Wal | `Snapshot | `State_dir ];
  ck_config : Config.t option;
  ck_submits : int;
  ck_faults : int;
  ck_endows : int;
  ck_modes : int;
  ck_first_seq : int;  (** 0 when no records *)
  ck_last_seq : int;
  ck_gaps : (int * int) list;
      (** adjacent seq pairs [(a, b)] with [b > a + 1]; expected after
          compaction, suspicious otherwise *)
  ck_torn : (int * int * int) option;
      (** [(line, offset, bytes)] of a dropped torn tail *)
}

val check : string -> (check_report, boot_error) result
(** Inspect a WAL file, a snapshot file (sniffed by content), or a state
    directory (both, merged as {!recover} would).  Corrupt input comes
    back as the same typed error a refused boot produces. *)

val pp_check : Format.formatter -> check_report -> unit
