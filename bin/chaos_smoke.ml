(* Chaos campaign for the service layer, driven through the REAL
   `fairsched` binary (argv.(1)) plus in-process Wal/Fuzz trials:

   1. crash-point campaign — for every named crash window of the
      WAL/snapshot protocol (`--chaos crash@SITE`), submit a golden
      instance through a daemon that dies mid-protocol, restart it on
      the same state dir, retransmit with the same (cid, cseq), and
      check: no acked submission lost, none double-applied, final ψsp
      and kernel stats bit-identical to the uninterrupted batch run;
   2. corruption fuzzing — seeded random mutations (bit flips,
      truncation, dup/swap/drop lines, garbage tails) of a golden WAL
      and snapshot; recovery must either return a consistent prefix of
      the original records or refuse to start with a typed error naming
      the corrupt offset, plus deterministic multi-record torn-tail
      cuts that must recover the exact intact prefix, plus
      `fairsched ctl wal-check` exit codes (0 intact, 2 corrupt);
   3. SIGKILL under load — a resilient Loadgen run against a daemon
      that is killed -9 and restarted mid-stream must complete with
      zero lost acks inside its retry budget;
   4. graceful degradation — an in-process server under a pipelined
      overload burst must switch to its `--degrade` estimator, shed
      load with retry-after hints, switch back once calm, and leave
      the whole story visible in Obs.Metrics and the WAL's Mode
      records.

   Every randomized trial prints its seed on failure so it can be
   replayed.  Exit 0 on success, 1 with a one-line reason otherwise. *)

let exe = ref ""
let failures = ref 0
let trials = ref 0

let fail fmt =
  Format.kasprintf
    (fun msg ->
      incr failures;
      Format.eprintf "chaos-smoke: FAIL %s@." msg)
    fmt

let fatal fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "chaos-smoke: FATAL %s@." msg;
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let rec rm path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fairsched-chaos-%d" (Unix.getpid ()))
  in
  (try rm dir with Sys_error _ | Unix.Unix_error _ -> ());
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- child-process plumbing ---------------------------------------------- *)

let devnull () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644

let spawn_serve args =
  let out = devnull () in
  let pid =
    Unix.create_process !exe
      (Array.of_list (Filename.basename !exe :: "serve" :: args))
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  pid

let reap pid =
  try snd (Unix.waitpid [] pid) with Unix.Unix_error _ -> Unix.WEXITED 0

let kill9 pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap pid)

let run_cli args =
  let out = devnull () in
  let pid =
    Unix.create_process !exe
      (Array.of_list (Filename.basename !exe :: args))
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  match reap pid with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255

(* --- a client that supervises its daemon --------------------------------- *)

(* The campaign's client is deliberately manual (no {!Client.Resilient}):
   it owns the (cid, cseq) stamps so a retransmission after a chaos
   crash provably carries the same identity, and it doubles as the
   supervisor that restarts the daemon — without the chaos plan — when
   the plan kills it. *)

type daemon = {
  mutable pid : int;
  args : string list;  (* respawn args: no --chaos, same state dir *)
  mutable restarts : int;
  ctx : string;  (* "SPEC seed N" for failure messages *)
}

let revive d =
  match Unix.waitpid [ Unix.WNOHANG ] d.pid with
  | 0, _ -> ()
  | _, status ->
      (match status with
      | Unix.WEXITED c when c = Chaos.Fs.exit_code || c = 0 -> ()
      | Unix.WEXITED c -> fail "[%s] daemon died with exit %d" d.ctx c
      | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
          fail "[%s] daemon died of a signal" d.ctx);
      d.pid <- spawn_serve d.args;
      d.restarts <- d.restarts + 1
  | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      d.pid <- spawn_serve d.args;
      d.restarts <- d.restarts + 1

type ep = {
  addr : Service.Addr.t;
  d : daemon;
  mutable cl : Service.Client.t option;
}

let drop ep =
  (match ep.cl with Some c -> Service.Client.close c | None -> ());
  ep.cl <- None

let rec client ep n =
  match ep.cl with
  | Some c -> c
  | None ->
      if n = 0 then fatal "[%s] could not connect" ep.d.ctx;
      (match Service.Client.connect ~timeout_s:2.0 ep.addr with
      | Ok c ->
          ep.cl <- Some c;
          c
      | Error _ ->
          revive ep.d;
          Unix.sleepf 0.03;
          client ep (n - 1))

(* Retransmit until acknowledged.  Backpressure honors the server's
   retry-after hint; a wal-error means the ack is withheld while the
   record's bytes may still land — only a re-send with the same stamp
   can tell, which is exactly what the dedupe table is for. *)
let rec call ep req n =
  if n = 0 then fatal "[%s] request kept failing: %s" ep.d.ctx
      (Obs.Json.to_string (Service.Protocol.request_to_json req));
  let c = client ep 300 in
  match Service.Client.request ~timeout_s:5.0 c req with
  | Ok (Service.Protocol.Error
         { code = Service.Protocol.Backpressure; retry_after_ms; _ }) ->
      Unix.sleepf (float_of_int (Option.value retry_after_ms ~default:25) /. 1000.);
      call ep req (n - 1)
  | Ok (Service.Protocol.Error { code = Service.Protocol.Wal_error; _ }) ->
      Unix.sleepf 0.05;
      call ep req (n - 1)
  | Ok resp -> resp
  | Error _ ->
      drop ep;
      revive ep.d;
      Unix.sleepf 0.03;
      call ep req (n - 1)

(* --- phase 1: crash-point campaign --------------------------------------- *)

(* (chaos spec, expect the daemon to die, needs a mid-stream snapshot) *)
let crash_specs =
  [
    ("crash@wal-append:3", true, false);
    ("crash@wal-append:7", true, false);
    ("crash@before-wal-append:4", true, false);
    ("crash@after-wal-append:3", true, false);
    ("crash@wal-fsync:3", true, false);
    ("crash@after-wal-fsync:2", true, false);
    ("torn@wal-append:3=5", true, false);
    ("torn@wal-append:5=1", true, false);
    ("enospc@wal-fsync:3", false, false);
    ("eio@wal-append:4", false, false);
    ("crash@snap-open:1", true, true);
    ("crash@snap-write:1", true, true);
    ("crash@snap-fsync:1", true, true);
    ("crash@before-snapshot-rename:1", true, true);
    ("crash@snap-rename:1", true, true);
    ("crash@after-snapshot-rename:1", true, true);
    ("crash@before-wal-reset:1", true, true);
    ("crash@after-wal-reset:1", true, true);
  ]

let crash_trial ~root ~tid ~spec ~expect_crash ~snap ~seed ~serve_flags ~jobs
    ~(batch : Sim.Driver.result) =
  incr trials;
  let dir = Filename.concat root (Printf.sprintf "t%d" tid) in
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "d.sock" in
  let args =
    serve_flags
    @ [ "--listen"; "unix:" ^ sock; "--state"; Filename.concat dir "state" ]
  in
  let ctx = Printf.sprintf "%s seed %d" spec seed in
  let d =
    {
      pid = spawn_serve (args @ [ "--chaos"; spec ]);
      args;
      restarts = 0;
      ctx;
    }
  in
  let ep = { addr = Service.Addr.Unix_sock sock; d; cl = None } in
  let njobs = Array.length jobs in
  let snap_at = if snap then njobs / 2 else -1 in
  Array.iteri
    (fun i (j : Core.Job.t) ->
      if i = snap_at then (
        match call ep Service.Protocol.Snapshot 50 with
        | Service.Protocol.Snapshot_ok _ -> ()
        | _ -> fail "[%s] snapshot: unexpected response" ctx);
      match
        call ep
          (Service.Protocol.Submit
             {
               org = j.Core.Job.org;
               user = j.Core.Job.user;
               release = j.Core.Job.release;
               size = j.Core.Job.size;
               cid = 7;
               cseq = i + 1;
               trace = 0;
             })
          100
      with
      | Service.Protocol.Submit_ok { index; _ } ->
          if index <> j.Core.Job.index then
            fail "[%s] served rank %d <> batch rank %d for job %d" ctx index
              j.Core.Job.index i
      | _ -> fail "[%s] submit %d: unexpected response" ctx i)
    jobs;
  (* Every acked submission must have survived, exactly once. *)
  (match call ep Service.Protocol.Status 50 with
  | Service.Protocol.Status_ok st ->
      if st.Service.Protocol.accepted <> njobs then
        fail "[%s] daemon holds %d submissions, %d were acked" ctx
          st.Service.Protocol.accepted njobs
  | _ -> fail "[%s] status: unexpected response" ctx);
  (match call ep (Service.Protocol.Drain { detail = false }) 50 with
  | Service.Protocol.Drain_ok r ->
      if r.Service.Protocol.d_psi_scaled <> batch.Sim.Driver.utilities_scaled
      then fail "[%s] psi after recovery differs from batch" ctx;
      if
        Kernel.Stats.to_json r.Service.Protocol.d_stats
        <> Kernel.Stats.to_json batch.Sim.Driver.stats
      then fail "[%s] kernel stats after recovery differ from batch" ctx
  | _ -> fail "[%s] drain: unexpected response" ctx);
  drop ep;
  (match reap d.pid with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> fail "[%s] drained daemon exited %d" ctx c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> fail "[%s] drained daemon was signaled" ctx);
  if expect_crash && d.restarts = 0 then
    fail "[%s] chaos plan never fired (no crash observed)" ctx;
  if (not expect_crash) && d.restarts > 0 then
    fail "[%s] daemon died under a non-lethal plan" ctx

let crash_phase root =
  let horizon = 20_000 and norgs = 2 and machines = 4 in
  let algorithm = "fairshare" in
  let spec_w =
    Workload.Scenario.default ~norgs ~machines ~horizon
      Workload.Traces.lpc_egee
  in
  List.iteri
    (fun si seed ->
      let instance = Workload.Scenario.instance spec_w ~seed in
      let jobs = instance.Core.Instance.jobs in
      if Array.length jobs < 10 then
        fatal "crash phase: instance too small (%d jobs)" (Array.length jobs);
      let batch =
        Sim.Driver.run ~instance
          ~rng:(Fstats.Rng.create ~seed)
          (Algorithms.Registry.find_exn algorithm)
      in
      let serve_flags =
        [
          "--algorithm"; algorithm; "--orgs"; string_of_int norgs;
          "--machines"; string_of_int machines;
          "--horizon"; string_of_int horizon; "--seed"; string_of_int seed;
          "--snapshot-every"; "0";
        ]
      in
      List.iteri
        (fun i (spec, expect_crash, snap) ->
          crash_trial ~root ~tid:((1000 * si) + i) ~spec ~expect_crash ~snap
            ~seed ~serve_flags ~jobs ~batch)
        crash_specs)
    [ 2013; 4027 ];
  Format.printf "chaos-smoke: crash campaign OK (%d windows x 2 seeds)@."
    (List.length crash_specs)

(* --- phase 2: corruption fuzzing ----------------------------------------- *)

let seq_of_records = List.map Service.Wal.seq_of

let strictly_increasing seqs =
  let rec go = function
    | a :: (b :: _ as rest) -> a < b && go rest
    | _ -> true
  in
  go seqs

let golden_config () =
  match
    Service.Config.make ~machines:[| 2; 2 |] ~horizon:10_000
      ~algorithm:"fairshare" ~seed:5 ()
  with
  | Ok c -> c
  | Error msg -> fatal "golden config: %s" msg

(* A golden state dir: 24 records (one a Mode switch), a snapshot
   covering the first 10, and the full WAL — recovery merges the two. *)
let build_golden dir =
  Unix.mkdir dir 0o755;
  let config = golden_config () in
  let w =
    match Service.Wal.create ~dir ~config () with
    | Ok w -> w
    | Error msg -> fatal "golden wal: %s" msg
  in
  let record i =
    if i = 13 then Service.Wal.Mode { seq = i; estimator = "rand:0.1,0.9" }
    else
      Service.Wal.Submit
        {
          seq = i;
          org = i mod 2;
          user = 0;
          release = i * 7;
          size = 3 + (i mod 5);
          cid = 9;
          cseq = i;
        }
  in
  let records = List.init 24 (fun i -> record (i + 1)) in
  List.iter (Service.Wal.append w) records;
  (match Service.Wal.sync w with
  | Ok () -> ()
  | Error msg -> fatal "golden sync: %s" msg);
  Service.Wal.close w;
  let covered = List.filter (fun r -> Service.Wal.seq_of r <= 10) records in
  (match
     Service.Wal.write_snapshot ~dir
       { Service.Wal.config; last_seq = 10; records = covered }
   with
  | Ok _ -> ()
  | Error msg -> fatal "golden snapshot: %s" msg);
  records

let fuzz_phase root =
  let dir = Filename.concat root "golden" in
  let originals = build_golden dir in
  let wal_bytes = read_file (Service.Wal.wal_path ~dir) in
  let snap_bytes = read_file (Service.Wal.snapshot_path ~dir) in
  let header_len = 1 + String.index wal_bytes '\n' in
  let scratch = Filename.concat root "scratch" in
  let fresh_scratch ~wal ~snap =
    rm scratch;
    Unix.mkdir scratch 0o755;
    write_file (Service.Wal.wal_path ~dir:scratch) wal;
    Option.iter (write_file (Service.Wal.snapshot_path ~dir:scratch)) snap
  in
  let recovered = ref 0 and refused = ref 0 in
  (* Randomized single-mutation trials over both files. *)
  for t = 0 to 179 do
    incr trials;
    let seed = 31_000 + t in
    let rng = Fstats.Rng.create ~seed in
    let on_wal = t mod 4 <> 3 in
    let content = if on_wal then wal_bytes else snap_bytes in
    let m = Chaos.Fuzz.random rng content in
    let mutated = Chaos.Fuzz.apply content m in
    fresh_scratch
      ~wal:(if on_wal then mutated else wal_bytes)
      ~snap:(Some (if on_wal then snap_bytes else mutated));
    let ctx =
      Printf.sprintf "fuzz seed %d: %s on %s" seed (Chaos.Fuzz.describe m)
        (if on_wal then "wal" else "snapshot")
    in
    match Service.Wal.recover ~dir:scratch with
    | Ok r ->
        incr recovered;
        let recs = r.Service.Wal.r_records in
        if not (strictly_increasing (seq_of_records recs)) then
          fail "[%s] recovered seqs not strictly increasing" ctx;
        if List.length recs > List.length originals then
          fail "[%s] recovered %d records, only %d were written" ctx
            (List.length recs) (List.length originals);
        (* A single mutation can silently alter at most the one line it
           touched (the format has no per-record checksum); anything
           beyond that is corruption leaking through recovery. *)
        let alien =
          List.filter (fun x -> not (List.mem x originals)) recs
        in
        if List.length alien > 1 then
          fail "[%s] %d altered records recovered silently" ctx
            (List.length alien)
    | Error (Service.Wal.Corrupt c) ->
        incr refused;
        if c.Service.Wal.c_reason = "" then
          fail "[%s] corrupt refusal without a reason" ctx;
        if
          c.Service.Wal.c_offset < 0
          || c.Service.Wal.c_offset > String.length mutated
        then
          fail "[%s] corrupt offset %d outside the file" ctx
            c.Service.Wal.c_offset
    | Error (Service.Wal.Io _ | Service.Wal.Mismatch _) -> incr refused
  done;
  if !recovered = 0 then fail "fuzz campaign never recovered (all refused?)";
  if !refused = 0 then fail "fuzz campaign never refused (all recovered?)";
  (* Deterministic multi-record torn tails: cut the WAL mid-line k and
     recovery (no snapshot) must return exactly the first k-1 records. *)
  let line_offsets =
    let offs = ref [ 0 ] in
    String.iteri
      (fun i ch -> if ch = '\n' then offs := (i + 1) :: !offs)
      wal_bytes;
    List.rev !offs
  in
  List.iteri
    (fun k off ->
      if k >= 1 && off < String.length wal_bytes then begin
        incr trials;
        let next_off =
          match List.nth_opt line_offsets (k + 1) with
          | Some o -> o
          | None -> String.length wal_bytes
        in
        let cut = off + ((next_off - off) / 2) in
        let ctx = Printf.sprintf "torn tail: cut at byte %d (line %d)" cut k in
        fresh_scratch ~wal:(String.sub wal_bytes 0 cut) ~snap:None;
        match Service.Wal.recover ~dir:scratch with
        | Ok r ->
            let expect = List.filteri (fun i _ -> i < k - 1) originals in
            if r.Service.Wal.r_records <> expect then
              fail "[%s] expected the %d-record prefix, got %d records" ctx
                (k - 1)
                (List.length r.Service.Wal.r_records)
        | Error e ->
            fail "[%s] refused a clean torn tail: %s" ctx
              (Service.Wal.boot_error_to_string e)
      end)
    line_offsets;
  ignore header_len;
  (* The offline inspector's CLI contract: 0 on intact input (torn tails
     included), 2 on corrupt input. *)
  let cli_case ~expect args ctx =
    incr trials;
    let code = run_cli args in
    if code <> expect then
      fail "[wal-check %s] exited %d, expected %d" ctx code expect
  in
  fresh_scratch ~wal:wal_bytes ~snap:(Some snap_bytes);
  cli_case ~expect:0
    [ "ctl"; "wal-check"; Service.Wal.wal_path ~dir:scratch ]
    "intact wal";
  cli_case ~expect:0 [ "ctl"; "wal-check"; scratch ] "intact state dir";
  let torn = String.sub wal_bytes 0 (String.length wal_bytes - 3) in
  fresh_scratch ~wal:torn ~snap:None;
  cli_case ~expect:0
    [ "ctl"; "wal-check"; Service.Wal.wal_path ~dir:scratch ]
    "torn tail";
  let mid = header_len + ((String.length wal_bytes - header_len) / 2) in
  let corrupt_wal =
    String.mapi (fun i ch -> if i = mid then '\255' else ch) wal_bytes
  in
  fresh_scratch ~wal:corrupt_wal ~snap:None;
  cli_case ~expect:2
    [ "ctl"; "wal-check"; Service.Wal.wal_path ~dir:scratch ]
    "corrupt middle";
  cli_case ~expect:2 [ "ctl"; "wal-check" ] "missing argument";
  Format.printf
    "chaos-smoke: corruption fuzzing OK (180 mutations: %d recovered, %d \
     refused; %d torn-tail cuts)@."
    !recovered !refused
    (List.length line_offsets - 1)

(* --- phase 3: SIGKILL under load ----------------------------------------- *)

let sigkill_loadgen_phase root =
  incr trials;
  let sock = Filename.concat root "load.sock" in
  let state = Filename.concat root "load-state" in
  let seed = 9 and count = 1_200 and rate = 2_500. in
  let spec =
    Workload.Scenario.default ~norgs:3 ~machines:8 ~horizon:1_000_000
      Workload.Traces.lpc_egee
  in
  let args =
    [
      "--listen"; "unix:" ^ sock; "--state"; state; "--orgs"; "3";
      "--machines"; "8"; "--horizon"; "1000000"; "--seed"; string_of_int seed;
      "--algorithm"; "fairshare";
    ]
  in
  let pid = ref (spawn_serve args) in
  let d = { pid = !pid; args; restarts = 0; ctx = "sigkill-loadgen" } in
  let ep = { addr = Service.Addr.Unix_sock sock; d; cl = None } in
  ignore (client ep 300);
  drop ep;
  (* Kill -9 mid-stream and restart on the same state dir; the resilient
     loadgen client must absorb it inside its retry budget. *)
  let killer =
    Thread.create
      (fun () ->
        Thread.delay 0.25;
        kill9 !pid;
        pid := spawn_serve args)
      ()
  in
  let report =
    match
      Service.Loadgen.run
        {
          Service.Loadgen.addr = ep.addr;
          spec;
          seed;
          rate;
          count;
          drain = false;
          policy = Service.Retry.default;
          timeout_s = 5.0;
          connections = 1;
          groups = 1;
          window = 1;
        }
    with
    | Ok r -> r
    | Error msg -> fatal "[sigkill-loadgen] %s" msg
  in
  Thread.join killer;
  d.pid <- !pid;
  if report.Service.Loadgen.accepted <> count then
    fail "[sigkill-loadgen] %d of %d submissions acked"
      report.Service.Loadgen.accepted count;
  if report.Service.Loadgen.errors <> 0 || report.Service.Loadgen.gave_up <> 0
  then
    fail "[sigkill-loadgen] %d errors, %d gave up (budget exhausted)"
      report.Service.Loadgen.errors report.Service.Loadgen.gave_up;
  if report.Service.Loadgen.reconnects = 0 then
    fail "[sigkill-loadgen] loadgen never reconnected — was the daemon killed?";
  (* The restarted daemon must agree: every ack exactly once. *)
  (match call ep Service.Protocol.Status 50 with
  | Service.Protocol.Status_ok st ->
      if st.Service.Protocol.accepted <> count then
        fail "[sigkill-loadgen] daemon recovered %d of %d acked submissions"
          st.Service.Protocol.accepted count
  | _ -> fail "[sigkill-loadgen] status: unexpected response");
  (match call ep (Service.Protocol.Drain { detail = false }) 50 with
  | Service.Protocol.Drain_ok _ -> ()
  | _ -> fail "[sigkill-loadgen] drain: unexpected response");
  drop ep;
  (match reap d.pid with
  | Unix.WEXITED 0 -> ()
  | _ -> fail "[sigkill-loadgen] drained daemon did not exit cleanly");
  Format.printf
    "chaos-smoke: SIGKILL under load OK (%d acks, %d retries, %d reconnects)@."
    report.Service.Loadgen.accepted report.Service.Loadgen.retries
    report.Service.Loadgen.reconnects

(* --- phase 4: graceful degradation --------------------------------------- *)

let find_counter name =
  List.fold_left
    (fun acc -> function
      | n, Obs.Metrics.Counter v when n = name -> acc + v
      | _ -> acc)
    0
    (Obs.Metrics.snapshot ())

let degrade_phase root =
  incr trials;
  Obs.Metrics.set_enabled true;
  let sock = Filename.concat root "deg.sock" in
  let state = Filename.concat root "deg-state" in
  let addr = Service.Addr.Unix_sock sock in
  let service = golden_config () in
  let degrade_to = "rand:0.25,0.5" in
  if Algorithms.Registry.find degrade_to = None then
    fatal "[degrade] estimator %s not in the registry" degrade_to;
  let overload =
    {
      Service.Overload.default with
      Service.Overload.queue_high = 0.4;
      queue_low = 0.2;
      (* latency plays no part here: occupancy alone drives the detector *)
      ack_high_ms = 1e9;
      ack_low_ms = 1e9;
      trip_ms = 30.;
      recover_ms = 80.;
    }
  in
  let service = { service with Service.Config.horizon = 1_000_000 } in
  let cfg =
    Service.Server.make_config ~state_dir:state ~queue_cap:8 ~drain_batch:1
      ~degrade_to ~overload ~addr ~service ()
  in
  let result = ref (Ok ()) in
  let srv = Thread.create (fun () -> result := Service.Server.run cfg) () in
  let ctl =
    let rec go n =
      if n = 0 then fatal "[degrade] server never came up";
      match Service.Client.connect ~timeout_s:2.0 addr with
      | Ok c -> c
      | Error _ ->
          Unix.sleepf 0.02;
          go (n - 1)
    in
    go 300
  in
  let status () =
    match Service.Client.request ~timeout_s:5.0 ctl Service.Protocol.Status with
    | Ok (Service.Protocol.Status_ok st) -> st
    | Ok _ | Error _ -> fatal "[degrade] status request failed"
  in
  (* A raw pipelined burster on its own thread: it must keep the tiny
     admission queue saturated for longer than the trip dwell, which a
     send-then-poll loop cannot (the queue drains during the poll's
     round trip and the dwell timer resets).  Responses are drained and
     discarded — sheds are expected, that is the point. *)
  let stop_burst = ref false in
  let burster =
    Thread.create
      (fun () ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        let buf = Bytes.create 65536 in
        let drain_responses () =
          let rec go () =
            match Unix.select [ fd ] [] [] 0.0 with
            | [ _ ], _, _ ->
                if Unix.read fd buf 0 (Bytes.length buf) > 0 then go ()
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          in
          go ()
        in
        let release = ref 0 in
        while not !stop_burst do
          let b = Buffer.create 4096 in
          for _ = 1 to 40 do
            incr release;
            Buffer.add_string b
              (Service.Protocol.request_to_line
                 (Service.Protocol.Submit
                    {
                      org = !release mod 2;
                      user = 0;
                      release = !release;
                      size = 2;
                      cid = 0;
                      cseq = 0;
                      trace = 0;
                    }))
          done;
          let s = Buffer.to_bytes b in
          let rec write_all off =
            if off < Bytes.length s then
              match Unix.write fd s off (Bytes.length s - off) with
              | n -> write_all (off + n)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
              | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
                -> ()
          in
          write_all 0;
          drain_responses ()
        done;
        Unix.close fd)
      ()
  in
  (* Phase in: saturate until the detector trips and the estimator
     switches (bounded by a deadline, not a fixed count). *)
  let deadline = Unix.gettimeofday () +. 20.0 in
  let tripped = ref false in
  while (not !tripped) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01;
    let st = status () in
    if st.Service.Protocol.degraded then tripped := true
  done;
  if not !tripped then fail "[degrade] overload never tripped degraded mode";
  let st_hot = status () in
  if st_hot.Service.Protocol.degraded && st_hot.Service.Protocol.estimator <> degrade_to
  then
    fail "[degrade] degraded but estimator is %s, expected %s"
      st_hot.Service.Protocol.estimator degrade_to;
  if st_hot.Service.Protocol.shed = 0 then
    fail "[degrade] saturated a queue of 8 without shedding";
  (* Shed responses must carry the retry-after hint.  The queue is
     saturated, so a handful of tries is enough to get backpressured. *)
  let hint_checked = ref false in
  let tries = ref 0 in
  while (not !hint_checked) && !tries < 50 do
    incr tries;
    match
      Service.Client.request ~timeout_s:5.0 ctl
        (Service.Protocol.Submit
           {
             org = 0;
             user = 0;
             release = 999_000 + !tries;
             size = 2;
             cid = 0;
             cseq = 0;
             trace = 0;
           })
    with
    | Ok (Service.Protocol.Error
           { code = Service.Protocol.Backpressure; retry_after_ms; _ }) ->
        hint_checked := true;
        if retry_after_ms = None then
          fail "[degrade] backpressure without a retry_after_ms hint"
    | Ok _ | Error _ -> ()
  done;
  if not !hint_checked then
    fail "[degrade] never saw backpressure on a saturated queue";
  stop_burst := true;
  Thread.join burster;
  (* Phase out: stop the load; status polls double as detector ticks. *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let calm = ref false in
  while (not !calm) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.03;
    let st = status () in
    if not st.Service.Protocol.degraded then calm := true
  done;
  if not !calm then fail "[degrade] never recovered from degraded mode";
  let st_cool = status () in
  if st_cool.Service.Protocol.estimator <> service.Service.Config.algorithm
  then
    fail "[degrade] recovered but estimator is %s, expected %s"
      st_cool.Service.Protocol.estimator service.Service.Config.algorithm;
  (match
     Service.Client.request ~timeout_s:30.0 ctl
       (Service.Protocol.Drain { detail = false })
   with
  | Ok (Service.Protocol.Drain_ok _) -> ()
  | Ok _ | Error _ -> fail "[degrade] drain failed");
  Service.Client.close ctl;
  Thread.join srv;
  (match !result with
  | Ok () -> ()
  | Error msg -> fail "[degrade] server exited with: %s" msg);
  (* The whole story must be visible in the metrics... *)
  let switches = find_counter "service.degrade_switches" in
  let recoveries = find_counter "service.recover_switches" in
  let shed = find_counter "service.shed" in
  if switches < 1 then fail "[degrade] service.degrade_switches = 0";
  if recoveries < 1 then fail "[degrade] service.recover_switches = 0";
  if shed < 1 then fail "[degrade] service.shed = 0";
  (* ...and in the WAL: the switch and the recovery are Mode records. *)
  (match Service.Wal.recover ~dir:state with
  | Ok r ->
      let modes =
        List.filter
          (function Service.Wal.Mode _ -> true | _ -> false)
          r.Service.Wal.r_records
      in
      if List.length modes < 2 then
        fail "[degrade] %d Mode records in the WAL, expected >= 2"
          (List.length modes)
  | Error e ->
      fail "[degrade] post-drain state dir refused: %s"
        (Service.Wal.boot_error_to_string e));
  Format.printf
    "chaos-smoke: graceful degradation OK (switches %d, recoveries %d, shed \
     %d)@."
    switches recoveries shed

let () =
  if Array.length Sys.argv < 2 then fatal "usage: chaos_smoke FAIRSCHED_EXE";
  exe :=
    (if Filename.is_relative Sys.argv.(1) then
       Filename.concat (Sys.getcwd ()) Sys.argv.(1)
     else Sys.argv.(1));
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  with_tmpdir (fun dir ->
      crash_phase dir;
      fuzz_phase dir;
      sigkill_loadgen_phase dir;
      degrade_phase dir);
  if !failures > 0 then begin
    Format.eprintf "chaos-smoke: %d failure(s) across %d trials@." !failures
      !trials;
    exit 1
  end;
  Format.printf "chaos-smoke: OK (%d trials)@." !trials
