(* fairsched — command-line front end of the reproduction.

   Subcommands mirror the experiment index of DESIGN.md: `table` regenerates
   Tables 1/2, `fig10` regenerates Figure 10, `utilization` the Section 6
   experiment, `ablate` the ablations, `simulate` runs a single scenario,
   `trace` writes a synthetic SWF file. *)

open Cmdliner

(* One-line diagnostic + exit 2: the CLI contract for bad input (unknown
   algorithm, unreadable trace file, invalid flag combinations).  Flag
   parse errors and unknown subcommands exit 2 as well via
   [Cmd.eval ~term_err:2] below. *)
let die fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "fairsched: %s@." msg;
      exit 2)
    fmt

let positive_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 -> Ok v
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let positive_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. -> Ok v
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "%s must be positive, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_float)

let model_conv =
  let parse s =
    match Workload.Traces.by_name s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown model %S (try %s)" s
                (String.concat ", "
                   (List.map
                      (fun m -> m.Workload.Traces.name)
                      Workload.Traces.all))))
  in
  let print ppf m = Format.fprintf ppf "%s" m.Workload.Traces.name in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_conv Workload.Traces.lpc_egee
    & info [ "model"; "w" ] ~docv:"MODEL"
        ~doc:"Workload model: lpc-egee, pik-iplex, ricc, sharcnet-whale.")

let seed_arg =
  Arg.(value & opt int 2013 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let horizon_arg default =
  Arg.(
    value & opt int default
    & info [ "horizon"; "t" ] ~docv:"SECONDS" ~doc:"Evaluation horizon.")

let machines_arg =
  Arg.(
    value & opt int 16
    & info [ "machines"; "m" ] ~docv:"N"
        ~doc:"Total machine pool (scaled-down stand-in for the trace's pool).")

let norgs_arg =
  Arg.(
    value & opt int 5
    & info [ "orgs"; "k" ] ~docv:"K" ~doc:"Number of organizations.")

let instances_arg default =
  Arg.(
    value & opt int default
    & info [ "instances"; "n" ] ~docv:"N"
        ~doc:"Random instances per experimental cell.")

let workers_arg =
  Arg.(
    value
    & opt (some (positive_int_conv "--workers")) None
    & info [ "workers"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel-capable algorithms (REF's \
           sub-coalition engine).  1 forces strictly sequential execution; \
           the default is $(b,Domain.recommended_domain_count () - 1).  \
           Results are bit-identical for every worker count.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write results as CSV.")

(* --- fault injection flags (shared by simulate and timeline) ----------- *)

let faults_spec_conv =
  let parse s =
    match Faults.Model.spec_of_string s with
    | Ok dists -> Ok dists
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (mtbf, mttr) =
    Format.fprintf ppf "mtbf:%g,mttr:%g" (Faults.Model.mean_of mtbf)
      (Faults.Model.mean_of mttr)
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt (some faults_spec_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject random machine churn: \
           $(b,mtbf:MEAN,mttr:MEAN[,dist:exp|weibull|fixed][,shape:S]).  A \
           per-machine renewal fault trace is drawn from --seed; failures \
           kill the running job (it resubmits and restarts from scratch).")

let faults_script_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults-script" ] ~docv:"FILE"
        ~doc:
          "Inject scripted outages from FILE: one $(b,MACHINE DOWN_AT \
           UP_AT) triple per line ($(b,#) comments).  Mutually exclusive \
           with --faults.")

(* Compile the two flags into a concrete fault trace for a known cluster
   shape, enforcing the exit-2 contract on malformed input. *)
let resolve_faults ~machines ~horizon ~seed spec script =
  match (spec, script) with
  | Some _, Some _ -> die "--faults and --faults-script are mutually exclusive"
  | None, None -> []
  | Some (mtbf, mttr), None ->
      Faults.Model.random
        ~rng:(Fstats.Rng.create ~seed:(seed lxor 0xfa017))
        ~machines ~horizon ~mtbf ~mttr ()
  | None, Some path -> (
      match Faults.Model.load_script path with
      | Ok trace ->
          (match Faults.Event.validate ~machines trace with
          | Ok () -> ()
          | Error msg -> die "%s: %s" path msg);
          trace
      | Error msg -> die "%s" msg)

(* --- endowment churn flags (shared by simulate and serve) --------------- *)

let federation_arg =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "federation" ] ~docv:"SPEC|FILE"
        ~doc:
          "Inject endowment churn — consortium joins/leaves and machine \
           lends/reclaims (DESIGN.md §17).  A FILE is a script of $(b,TIME \
           join|leave|lend|reclaim ...) lines; anything else is a \
           peak-offloading model spec \
           $(b,period:P,lend:N[,correlation:R][,jitter:J]) drawn from \
           --seed.  On $(b,serve), the bare flag marks the daemon federated \
           (it accepts $(b,endow) requests over the socket); a SPEC|FILE is \
           additionally validated against the cluster shape at boot.")

(* Flattened machine -> home-org map of an org-contiguous machine split. *)
let homes_of_split machines_per_org =
  Array.concat
    (List.mapi (fun u n -> Array.make n u) (Array.to_list machines_per_org))

(* Compile the --federation value into a concrete endowment trace for a
   known cluster shape: an existing file is a script, anything else is a
   generative-model spec.  The empty string (bare `--federation` on serve)
   is an empty trace.  Exit-2 contract on malformed input. *)
let resolve_federation ~machines_per_org ~horizon ~seed = function
  | None | Some "" -> []
  | Some spec_or_file ->
      let trace =
        if Sys.file_exists spec_or_file then
          match Federation.Model.load_script spec_or_file with
          | Ok trace -> trace
          | Error msg -> die "%s" msg
        else
          match Federation.Model.spec_of_string spec_or_file with
          | Ok spec ->
              Federation.Model.random
                ~rng:(Fstats.Rng.create ~seed:(seed lxor 0xfed))
                ~machines_per_org ~horizon ~spec ()
          | Error msg ->
              die "--federation %S is not a file, and %s" spec_or_file msg
      in
      (match
         Federation.Event.validate
           ~orgs:(Array.length machines_per_org)
           ~homes:(homes_of_split machines_per_org)
           trace
       with
      | Ok () -> ()
      | Error msg -> die "--federation: %s" msg);
      trace

let report_federation trace =
  if trace <> [] then begin
    let joins, leaves, lends, reclaims = Federation.Model.count_kind trace in
    Format.printf
      "federation: %d events (%d join, %d leave, %d lend, %d reclaim)@."
      (List.length trace) joins leaves lends reclaims
  end

let progress line = Format.eprintf "  %s@." line

let write_csv path contents =
  match path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Format.printf "wrote %s@." path

(* --- observability flags (shared by the long-running commands) --------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace-event timeline of the run and write it to \
           FILE (open with Perfetto or chrome://tracing; check with \
           $(b,fairsched validate-trace)).")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some None) (some (some string)) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect runtime metrics: latency histograms, event-heap \
           counters, pool busy/idle times.  Bare $(b,--metrics) prints \
           them to stdout after the run; the glued form \
           $(b,--metrics=FILE) writes pretty JSON to FILE.")

let estimator_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "estimator" ] ~docv:"SPEC"
        ~doc:
          "Contribution estimator, overriding $(b,--algorithm): \
           $(b,exact) (Algorithm REF, all 2^k sub-coalitions — k <= 16), \
           $(b,rand-N) (Algorithm RAND with N sampled joining orders), or \
           $(b,rand:EPS,CONF) (RAND with the Theorem 5.6 Hoeffding sample \
           count: with probability >= CONF every contribution estimate is \
           within EPS/k of the relative coalition value).  The sampled \
           tiers run at k far beyond REF's exponential wall.")

(* `--estimator SPEC` overrides `--algorithm`; the spec doubles as a
   registry-resolvable algorithm name, so it flows into service configs and
   the WAL unchanged.  Malformed specs honour the exit-2 contract. *)
let resolve_estimator ~algo = function
  | None -> algo
  | Some spec -> (
      match Algorithms.Estimator.of_string spec with
      | Ok e -> Algorithms.Estimator.algorithm_name e
      | Error msg -> die "%s" msg)

(* Surface the resolved sample count before a run: the Hoeffding count grows
   as k²/ε²·ln(k/(1−CONF)) and the user should see what they signed up for. *)
let report_estimator ~algo ~norgs =
  match Algorithms.Estimator.of_string algo with
  | Ok e -> (
      match Algorithms.Estimator.sample_count e ~players:norgs with
      | Some n ->
          Format.printf "estimator %s: %d sampled joining orders at k=%d@."
            algo n norgs
      | None -> ())
  | Error _ -> ()

(* Fail fast on an unwritable output path — before minutes of simulation —
   honouring the exit-2 contract ([die]). *)
let check_writable = function
  | None -> ()
  | Some path -> (
      try close_out (open_out path) with Sys_error msg -> die "%s" msg)

(* [with_obs ~trace ~metrics f] enables the requested collection around
   [f ()] and writes/prints the outputs afterwards.  [metrics] is doubly
   optional: [Some None] is the bare `--metrics` flag (print to stdout),
   [Some (Some path)] is `--metrics=FILE`. *)
let with_obs ~trace ~metrics f =
  check_writable trace;
  check_writable (Option.join metrics);
  if trace <> None then Obs.Trace.set_enabled true;
  if metrics <> None then Obs.Metrics.set_enabled true;
  let r = f () in
  (match trace with
  | None -> ()
  | Some path ->
      let n = Obs.Trace.write path in
      let dropped = Obs.Trace.dropped () in
      Format.printf "wrote %s (%d trace events%s)@." path n
        (if dropped = 0 then ""
         else Printf.sprintf ", %d dropped by the ring buffer" dropped));
  (match metrics with
  | None -> ()
  | Some None -> Format.printf "%a@." Obs.Metrics.pp ()
  | Some (Some path) ->
      let oc = open_out path in
      output_string oc
        (Obs.Json.to_string ~pretty:true (Obs.Metrics.to_json ()));
      output_char oc '\n';
      close_out oc;
      Format.printf "wrote %s@." path);
  r

(* --- simulate ------------------------------------------------------- *)

let simulate_cmd =
  let algo_arg =
    Arg.(
      value & opt string "ref"
      & info [ "algorithm"; "a" ] ~docv:"NAME"
          ~doc:"Algorithm (see `fairsched algorithms`).")
  in
  let gantt_arg =
    Arg.(
      value & flag
      & info [ "gantt" ] ~doc:"Draw an ASCII Gantt chart of the schedule.")
  in
  let max_restarts_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Kill budget per job under faults: after N restarts a killed \
             job is abandoned (default: unbounded).")
  in
  let run model algo estimator no_value_cache norgs machines horizon seed
      workers gantt fault_spec fault_script federation_spec max_restarts trace
      metrics =
    (match max_restarts with
    | Some r when r < 0 -> die "--max-restarts must be >= 0"
    | Some _ | None -> ());
    let algo = resolve_estimator ~algo estimator in
    let maker =
      if no_value_cache then
        (* The cache toggle needs a maker built with [value_cache:false];
           only the estimator-backed algorithms (ref / rand tiers) have
           one. *)
        match Algorithms.Estimator.of_string algo with
        | Ok e -> Algorithms.Estimator.maker ~value_cache:false e
        | Error _ ->
            die
              "--no-value-cache only applies to the ref/rand estimators, \
               not %S"
              algo
      else
        match Algorithms.Registry.find algo with
        | Some maker -> maker
        | None ->
            die "unknown algorithm %S (see `fairsched algorithms`)" algo
    in
    with_obs ~trace ~metrics @@ fun () ->
    let body () =
        report_estimator ~algo ~norgs;
        let spec =
          Workload.Scenario.default ~norgs ~machines ~horizon model
        in
        let instance = Workload.Scenario.instance spec ~seed in
        let faults =
          resolve_faults ~machines ~horizon ~seed fault_spec fault_script
        in
        let federation =
          resolve_federation
            ~machines_per_org:instance.Core.Instance.machines ~horizon ~seed
            federation_spec
        in
        Format.printf "%a@." Core.Instance.pp instance;
        if faults <> [] then begin
          let failures, recoveries = Faults.Model.count_kind faults in
          Format.printf
            "faults: %d failures, %d recoveries, %d machine-units down@."
            failures recoveries
            (Faults.Model.downtime ~machines ~horizon faults)
        end;
        report_federation federation;
        let rng = Fstats.Rng.create ~seed in
        let result =
          Sim.Driver.run ?workers ~faults ~federation ?max_restarts ~instance
            ~rng maker
        in
        Format.printf "%a@." Sim.Driver.pp_result result;
        Format.printf "utilization: %.3f  wall: %.2fs@."
          (Core.Schedule.utilization result.Sim.Driver.schedule ~upto:horizon)
          result.Sim.Driver.wall_seconds;
        Format.printf "kernel: %a@." Kernel.Stats.pp result.Sim.Driver.stats;
        if gantt then
          print_string
            (Core.Gantt.render ~upto:horizon result.Sim.Driver.schedule)
    in
    body ()
  in
  let no_value_cache_arg =
    Arg.(
      value & flag
      & info [ "no-value-cache" ]
          ~doc:
            "Disable the cross-instant coalition-value cache (DESIGN.md \
             §13).  Schedules are bit-identical with or without it; the \
             flag exists for benchmarking and for the differential tests.  \
             Only meaningful for the ref/rand estimators.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one algorithm on one synthetic scenario.")
    Term.(
      const run $ model_arg $ algo_arg $ estimator_arg $ no_value_cache_arg
      $ norgs_arg $ machines_arg $ horizon_arg 50_000 $ seed_arg $ workers_arg
      $ gantt_arg $ faults_arg $ faults_script_arg $ federation_arg
      $ max_restarts_arg $ trace_arg $ metrics_arg)

(* --- table ----------------------------------------------------------- *)

let table_cmd =
  let run horizon instances machines csv trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let config =
      if horizon >= 500_000 then
        { (Experiments.Tables.table2_config ~instances ~machines ()) with
          horizon }
      else
        { (Experiments.Tables.table1_config ~instances ~machines ()) with
          horizon }
    in
    let table = Experiments.Tables.run ~progress config in
    Format.printf "Average unjustified delay Δψ/p_tot (horizon %d, %d \
                   instances, %d machines, k=%d)@.@."
      horizon instances machines config.Experiments.Tables.norgs;
    Format.printf "%a@." Experiments.Tables.pp table;
    write_csv csv (Experiments.Tables.to_csv table)
  in
  Cmd.v
    (Cmd.info "table"
       ~doc:
         "Regenerate Table 1 (default) or Table 2 (--horizon 500000): \
          unfairness of each algorithm on each workload.")
    Term.(
      const run $ horizon_arg 50_000 $ instances_arg 10 $ machines_arg
      $ csv_arg $ trace_arg $ metrics_arg)

(* --- fig10 ----------------------------------------------------------- *)

let fig10_cmd =
  let max_orgs_arg =
    Arg.(
      value & opt int 8
      & info [ "max-orgs" ] ~docv:"K"
          ~doc:"Largest organization count (REF cost grows as 3^K).")
  in
  let run instances horizon max_orgs csv trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let config =
      Experiments.Fig10.default_config ~instances ~horizon ~max_orgs ()
    in
    let figure = Experiments.Fig10.run ~progress config in
    Format.printf "Unfairness vs number of organizations (LPC-EGEE)@.@.%a@."
      Experiments.Fig10.pp figure;
    write_csv csv (Experiments.Fig10.to_csv figure)
  in
  Cmd.v
    (Cmd.info "fig10"
       ~doc:"Regenerate Figure 10: Δψ/p_tot as the number of organizations \
             grows.")
    Term.(
      const run $ instances_arg 5 $ horizon_arg 50_000 $ max_orgs_arg
      $ csv_arg $ trace_arg $ metrics_arg)

(* --- utilization ------------------------------------------------------ *)

let utilization_cmd =
  let run () =
    Format.printf
      "Theorem 6.2 / Figure 7: greedy utilization vs the optimum@.@.";
    Format.printf "%-5s %-5s | %-12s %-12s %-8s %-8s@." "m" "p" "worst greedy"
      "best greedy" "optimal" "ratio";
    List.iter
      (fun (r : Experiments.Worked_examples.utilization_row) ->
        Format.printf "%-5d %-5d | %-12.4f %-12.4f %-8.4f %-8.4f@." r.m r.p
          r.greedy_worst r.greedy_best r.optimal r.ratio)
      (Experiments.Worked_examples.utilization_sweep
         [ (2, 2); (2, 5); (4, 3); (4, 10); (6, 4); (8, 3) ])
  in
  Cmd.v
    (Cmd.info "utilization"
       ~doc:"Regenerate the Section 6 tight ¾-competitiveness experiment.")
    Term.(const run $ const ())

(* --- ablate ----------------------------------------------------------- *)

let ablate_cmd =
  let which_arg =
    Arg.(
      value & pos 0 (enum [ ("rand", `Rand); ("endowment", `Endowment);
                            ("load", `Load) ]) `Rand
      & info [] ~docv:"WHICH" ~doc:"rand | endowment | load")
  in
  let run which instances horizon seed =
    let rows =
      match which with
      | `Rand ->
          Experiments.Ablations.rand_sample_sweep ~instances ~horizon ~seed ()
      | `Endowment ->
          Experiments.Ablations.endowment_sweep ~instances ~horizon ~seed ()
      | `Load -> Experiments.Ablations.load_sweep ~instances ~horizon ~seed ()
    in
    Format.printf "%a" Experiments.Ablations.pp_rows rows
  in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Run an ablation sweep (rand | endowment | load).")
    Term.(
      const run $ which_arg $ instances_arg 5 $ horizon_arg 50_000 $ seed_arg)

(* --- trace ------------------------------------------------------------ *)

let trace_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output SWF file.")
  in
  let run model machines horizon seed out =
    let rng = Fstats.Rng.create ~seed in
    let entries =
      Workload.Traces.generate model ~rng ~machines ~duration:horizon ()
    in
    let header =
      [
        Printf.sprintf "Synthetic %s model trace" model.Workload.Traces.name;
        Printf.sprintf "MaxProcs: %d" machines;
        Printf.sprintf "seed: %d  duration: %d" seed horizon;
      ]
    in
    Workload.Swf.save out { Workload.Swf.header; entries };
    Format.printf "wrote %d jobs to %s@." (List.length entries) out
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate a synthetic SWF trace file.")
    Term.(
      const run $ model_arg $ machines_arg $ horizon_arg 50_000 $ seed_arg
      $ out_arg)

(* --- timeline ---------------------------------------------------------- *)

let timeline_cmd =
  let run horizon instances seed fault_spec fault_script csv trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let faults =
      (* The timeline experiment fixes machines = 16 in its default config;
         the injected trace must match that cluster shape. *)
      resolve_faults ~machines:16 ~horizon ~seed fault_spec fault_script
    in
    let config =
      Experiments.Timeline.default_config ~horizon ~instances ~faults ()
    in
    let figure = Experiments.Timeline.run config in
    Format.printf "Unfairness over time (Δψ(t)/p_tot(t))%s@.@.%a@."
      (if faults = [] then "" else " under machine churn")
      Experiments.Timeline.pp figure;
    write_csv csv (Experiments.Timeline.to_csv figure)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Track how unfairness accumulates over the trace (Definition              3.2 is per-instant).")
    Term.(
      const run $ horizon_arg 200_000 $ instances_arg 3 $ seed_arg
      $ faults_arg $ faults_script_arg $ csv_arg $ trace_arg $ metrics_arg)

(* --- churn ------------------------------------------------------------- *)

let churn_cmd =
  let intensities_arg =
    Arg.(
      value
      & opt (list float) [ 0.; 0.5; 1.; 2. ]
      & info [ "intensities" ] ~docv:"X,Y,.."
          ~doc:
            "Failure-rate multipliers to sweep (0 = fault-free control; at \
             multiplier $(i,x) the per-machine MTBF is mtbf/$(i,x)).")
  in
  let mtbf_arg =
    Arg.(
      value
      & opt (positive_float_conv "--mtbf") 1_000.
      & info [ "mtbf" ] ~docv:"T"
          ~doc:"Per-machine mean time between failures at intensity 1.")
  in
  let mttr_arg =
    Arg.(
      value
      & opt (positive_float_conv "--mttr") 50.
      & info [ "mttr" ] ~docv:"T" ~doc:"Per-machine mean time to repair.")
  in
  let max_restarts_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Kill budget per job: after N restarts a killed job is \
             abandoned (default: unbounded).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let run norgs machines horizon instances intensities mtbf mttr max_restarts
      seed workers csv json trace metrics =
    if List.exists (fun x -> x < 0.) intensities then
      die "intensities must be non-negative";
    (match max_restarts with
    | Some r when r < 0 -> die "--max-restarts must be >= 0"
    | Some _ | None -> ());
    with_obs ~trace ~metrics @@ fun () ->
    let config =
      Experiments.Churn.default_config ~instances ~norgs ~machines ~horizon
        ~intensities ~mtbf ~mttr ?max_restarts ~seed ()
    in
    let study = Experiments.Churn.run ~progress ?workers config in
    Format.printf
      "Fairness and utilization under machine churn (k=%d, m=%d, horizon \
       %d, MTBF %g, MTTR %g, %d instances)@.@."
      norgs machines horizon mtbf mttr instances;
    Format.printf "%a@." Experiments.Churn.pp study;
    write_csv csv (Experiments.Churn.to_csv study);
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Experiments.Churn.to_json study);
        close_out oc;
        Format.printf "wrote %s@." path)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Fault-injection study: Δψ/p_tot and utilization of each \
          algorithm as machines fail and recover, against REF under the \
          same fault trace.")
    Term.(
      const run $ norgs_arg $ machines_arg $ horizon_arg 5_000
      $ instances_arg 3 $ intensities_arg $ mtbf_arg $ mttr_arg
      $ max_restarts_arg $ seed_arg $ workers_arg $ csv_arg $ json_arg
      $ trace_arg $ metrics_arg)

(* --- federation: the peak-offloading study ----------------------------- *)

let federation_cmd =
  let orgs_arg =
    Arg.(
      value & opt int 3
      & info [ "orgs"; "k" ] ~docv:"K" ~doc:"Number of organizations (>= 2).")
  in
  let mpo_arg =
    Arg.(
      value
      & opt (positive_int_conv "--machines-per-org") 2
      & info [ "machines-per-org" ] ~docv:"N"
          ~doc:"Home machines per organization (uniform endowment).")
  in
  let correlations_arg =
    Arg.(
      value
      & opt (list float) [ 0.; 0.25; 0.5; 0.75; 1. ]
      & info [ "correlations" ] ~docv:"R,R,.."
          ~doc:
            "Peak-phase correlations to sweep: 0 staggers the orgs' load \
             peaks evenly (cooperation should pay), 1 makes everyone peak \
             at once.")
  in
  let period_arg =
    Arg.(
      value
      & opt (positive_int_conv "--period") 200
      & info [ "period" ] ~docv:"T" ~doc:"Peak cycle length.")
  in
  let lend_arg =
    Arg.(
      value
      & opt (positive_int_conv "--lend") 1
      & info [ "lend" ] ~docv:"N"
          ~doc:"Machines each org lends during its off-peak half-cycle.")
  in
  let jitter_arg =
    Arg.(
      value & opt float 0.05
      & info [ "jitter" ] ~docv:"F"
          ~doc:"Per-org phase jitter of the lending trace, in [0, 1].")
  in
  let burst_arg =
    Arg.(
      value
      & opt (positive_int_conv "--burst") 6
      & info [ "burst" ] ~docv:"N"
          ~doc:"Jobs each org submits at its peak.")
  in
  let job_size_arg =
    Arg.(
      value
      & opt (positive_int_conv "--job-size") 20
      & info [ "job-size" ] ~docv:"P" ~doc:"Processing time of each job.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write results as JSON.")
  in
  let run norgs machines_per_org horizon instances correlations period lend
      jitter burst job_size seed workers csv json trace metrics =
    if norgs < 2 then die "--orgs must be >= 2";
    if jitter < 0. || jitter > 1. then die "--jitter must be in [0, 1]";
    if List.exists (fun r -> r < 0. || r > 1.) correlations then
      die "--correlations must be in [0, 1]";
    with_obs ~trace ~metrics @@ fun () ->
    let config =
      Experiments.Federation.default_config ~norgs ~machines_per_org ~horizon
        ~instances ~correlations ~period ~lend ~jitter ~burst ~job_size ~seed
        ()
    in
    let study = Experiments.Federation.run ~progress ?workers config in
    Format.printf
      "Peak offloading under endowment churn (k=%d, %d machines/org, \
       horizon %d, period %d, lend %d, burst %d x %d s, %d instances)@.@."
      norgs machines_per_org horizon period lend burst job_size instances;
    Format.printf "%a@." Experiments.Federation.pp study;
    write_csv csv (Experiments.Federation.to_csv study);
    match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Experiments.Federation.to_json study);
        close_out oc;
        Format.printf "wrote %s@." path
  in
  Cmd.v
    (Cmd.info "federation"
       ~doc:
         "Peak-offloading study: sweep the peak-phase correlation across \
          organizations and report when lending pays — REF's Σψsp with the \
          endowment churn applied vs the static pooled consortium vs every \
          org standalone.")
    Term.(
      const run $ orgs_arg $ mpo_arg $ horizon_arg 1_200 $ instances_arg 3
      $ correlations_arg $ period_arg $ lend_arg $ jitter_arg $ burst_arg
      $ job_size_arg $ seed_arg $ workers_arg $ csv_arg $ json_arg $ trace_arg
      $ metrics_arg)

(* --- validate-trace ----------------------------------------------------- *)

let validate_trace_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace-event JSON file to check.")
  in
  let run file =
    match Obs.Trace.validate_file file with
    | Ok v ->
        Format.printf "ok: %d events, %d tids, %d span names@."
          v.Obs.Trace.total_events
          (List.length v.Obs.Trace.tids)
          (List.length v.Obs.Trace.span_names)
    | Error msg -> die "%s: %s" file msg
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:
         "Check that FILE is well-formed Chrome trace-event JSON: every \
          event carries name/ph/ts/tid, complete events carry a \
          non-negative dur, timestamps never go backwards within a tid, \
          and B/E begin–end pairs balance.")
    Term.(const run $ file_arg)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file"; "f" ] ~docv:"FILE"
          ~doc:"SWF trace file to analyze (default: generate from --model).")
  in
  let run model machines horizon seed file =
    let entries =
      match file with
      | Some path -> (Workload.Swf.load path).Workload.Swf.entries
      | None ->
          Workload.Traces.generate model
            ~rng:(Fstats.Rng.create ~seed)
            ~machines ~duration:horizon ()
    in
    if entries = [] then die "empty trace";
    Format.printf "%a" Workload.Analysis.pp
      (Workload.Analysis.of_entries ~machines entries)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Descriptive statistics of a trace (SWF file or synthetic model).")
    Term.(
      const run $ model_arg $ machines_arg $ horizon_arg 50_000 $ seed_arg
      $ file_arg)

(* --- report ------------------------------------------------------------ *)

let report_cmd =
  let out_arg =
    Arg.(
      value & opt string "report.html"
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output HTML file.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller instance counts.")
  in
  let run out quick =
    let config = Report.Builder.default_config ~quick () in
    let html = Report.Builder.build ~progress:(fun s -> Format.eprintf "  .. %s@." s) config in
    Report.Builder.save ~path:out html;
    Format.printf "wrote %s (%d bytes)@." out (String.length html)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Generate a self-contained HTML report with SVG charts of every              experiment.")
    Term.(const run $ out_arg $ quick_arg)

(* --- service: serve / submit / status / ctl / loadgen ------------------- *)

let addr_conv =
  let parse s =
    match Service.Addr.of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Service.Addr.pp)

let default_addr = Service.Addr.Unix_sock "/tmp/fairsched.sock"

let to_arg =
  Arg.(
    value & opt addr_conv default_addr
    & info [ "to" ] ~docv:"ADDR"
        ~doc:
          "Daemon address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare \
           socket path.")

let nonneg_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when v >= 0. -> Ok v
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "%s must be >= 0, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_float)

let split_conv =
  let parse s =
    let parts = String.split_on_char ',' s in
    let ints = List.map int_of_string_opt parts in
    if List.exists (fun v -> v = None) ints then
      Error
        (`Msg
           (Printf.sprintf "--split must be comma-separated integers, got %S" s))
    else Ok (Array.of_list (List.map Option.get ints))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (String.concat "," (List.map string_of_int (Array.to_list a)))
  in
  Arg.conv (parse, print)

let groups_arg =
  Arg.(
    value
    & opt (positive_int_conv "--groups") 1
    & info [ "groups" ] ~docv:"G"
        ~doc:
          "Org-group partition: split the organizations into G contiguous \
           balanced scheduling domains, each with its own engine and WAL \
           segment.  Durable — a state dir remembers its group count.")

(* The daemon and the load generator must agree on the cluster shape and
   the user→organization map; deriving both from (model, orgs, machines,
   seed) through Scenario.split_and_map makes `serve` and `loadgen` with
   the same flags consistent by construction. *)
let service_config ~model ~norgs ~machines ~horizon ~algorithm ~seed ~split
    ~max_restarts ~workers ~groups ~federated =
  let machine_split =
    match split with
    | Some counts -> counts
    | None ->
        let spec = Workload.Scenario.default ~norgs ~machines ~horizon model in
        fst (Workload.Scenario.split_and_map spec ~seed)
  in
  match
    Service.Config.make ?max_restarts ?workers ~groups ~federated
      ~machines:machine_split ~horizon ~algorithm ~seed ()
  with
  | Ok c -> c
  | Error msg -> die "%s" msg

let timeout_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "--timeout") 5.
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Deadline for connecting and for each request phase; 0 waits \
           forever.")

let connect_or_die ?timeout_s addr =
  match Service.Client.connect ?timeout_s addr with
  | Ok c -> c
  | Error e ->
      die "cannot reach daemon at %a: %s" Service.Addr.pp addr
        (Service.Client.error_to_string e)

let request_or_die client req =
  match Service.Client.request client req with
  | Ok (Service.Protocol.Error { code; msg; _ }) ->
      die "daemon refused (%s): %s"
        (Service.Protocol.error_code_to_string code)
        msg
  | Ok resp -> resp
  | Error e -> die "%s" (Service.Client.error_to_string e)

let serve_cmd =
  let listen_arg =
    Arg.(
      value & opt addr_conv default_addr
      & info [ "listen"; "l" ] ~docv:"ADDR"
          ~doc:
            "Listen address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare \
             socket path.")
  in
  let state_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state" ] ~docv:"DIR"
          ~doc:
            "State directory for the write-ahead log and snapshots; enables \
             crash recovery.  Without it the daemon is ephemeral.")
  in
  let algo_arg =
    Arg.(
      value & opt string "fairshare"
      & info [ "algorithm"; "a" ] ~docv:"NAME"
          ~doc:"Scheduling algorithm (see `fairsched algorithms`).")
  in
  let split_arg =
    Arg.(
      value
      & opt (some split_conv) None
      & info [ "split" ] ~docv:"N,N,.."
          ~doc:
            "Explicit per-organization machine counts (overrides the \
             --model/--orgs/--machines/--seed derivation).")
  in
  let queue_cap_arg =
    Arg.(
      value
      & opt (positive_int_conv "--queue-cap") 1024
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission-queue bound: submissions beyond it are answered with \
             a typed backpressure error.")
  in
  let snapshot_every_arg =
    Arg.(
      value & opt int 4096
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Write a snapshot (and compact the WAL) every N accepted \
             records; 0 snapshots only on request and at drain.")
  in
  let max_restarts_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:"Kill budget per job under injected faults.")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic fault injection on the daemon's durability \
             syscalls.  SPEC is comma-separated ACTION@TARGET[:N][+][=BYTES] \
             clauses: $(b,crash@after-wal-append), $(b,enospc@wal-fsync:3+), \
             $(b,torn@wal-append=5).  Actions: crash, enospc, eio, short, \
             torn.  Testing only.")
  in
  let degrade_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "degrade" ] ~docv:"SPEC"
          ~doc:
            "Estimator to switch to under sustained overload (e.g. \
             $(b,rand:0.1,0.9)), switching back once load recovers.  The \
             switch is WAL-logged and crash-safe.")
  in
  let overload_queue_arg =
    Arg.(
      value
      & opt (nonneg_float_conv "--overload-queue") 0.8
      & info [ "overload-queue" ] ~docv:"FRAC"
          ~doc:
            "Admission-queue occupancy fraction treated as overload \
             pressure.")
  in
  let overload_ms_arg =
    Arg.(
      value
      & opt (nonneg_float_conv "--overload-ms") 50.
      & info [ "overload-ms" ] ~docv:"MS"
          ~doc:"Smoothed ack latency (EWMA, ms) treated as overload pressure.")
  in
  let overload_trip_arg =
    Arg.(
      value
      & opt (nonneg_float_conv "--overload-trip") 100.
      & info [ "overload-trip" ] ~docv:"MS"
          ~doc:"Sustained pressure (ms) before degrading.")
  in
  let overload_recover_arg =
    Arg.(
      value
      & opt (nonneg_float_conv "--overload-recover") 500.
      & info [ "overload-recover" ] ~docv:"MS"
          ~doc:"Sustained calm (ms) before recovering.")
  in
  let shards_arg =
    Arg.(
      value
      & opt (positive_int_conv "--shards") 1
      & info [ "shards" ] ~docv:"W"
          ~doc:
            "Worker domains executing the org-groups (clamped to the group \
             count).  Pure execution: scheduling state is bit-identical \
             across any value for a fixed --groups.  1 runs everything \
             inline on the router thread.")
  in
  let commit_interval_arg =
    Arg.(
      value
      & opt (nonneg_float_conv "--commit-interval") 0.
      & info [ "commit-interval" ] ~docv:"MS"
          ~doc:
            "Group-commit window in milliseconds: hold acks so one fsync \
             covers a batch, bounding the added latency by this window.  0 \
             fsyncs every pump (the classic behaviour).  Acked submissions \
             survive kill -9 either way.")
  in
  let log_level_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log threshold: $(b,debug), $(b,info), $(b,warn) \
             (default), or $(b,error).")
  in
  let log_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-file" ] ~docv:"FILE"
          ~doc:
            "Append structured logs to FILE as NDJSON (one JSON record per \
             line) instead of text on stderr.")
  in
  let run listen state model algo estimator norgs machines horizon seed split
      workers max_restarts queue_cap snapshot_every chaos degrade
      overload_queue overload_ms overload_trip overload_recover groups shards
      commit_interval federation_spec log_level log_file trace metrics =
    (match max_restarts with
    | Some r when r < 0 -> die "--max-restarts must be >= 0"
    | Some _ | None -> ());
    if snapshot_every < 0 then die "--snapshot-every must be >= 0";
    (match log_level with
    | None -> ()
    | Some s -> (
        match Obs.Log.level_of_string s with
        | Ok l -> Obs.Log.set_level l
        | Error msg -> die "%s" msg));
    (match log_file with
    | None -> ()
    | Some path -> (
        match Obs.Log.open_file path with
        | Ok () -> ()
        | Error msg -> die "%s" msg));
    let algo = resolve_estimator ~algo estimator in
    if Algorithms.Registry.find algo = None then
      die "unknown algorithm %S (see `fairsched algorithms`)" algo;
    (match degrade with
    | None -> ()
    | Some spec ->
        if Algorithms.Registry.find spec = None then
          die "unknown --degrade estimator %S (see `fairsched algorithms`)"
            spec);
    (match chaos with
    | None -> ()
    | Some spec -> (
        match Chaos.Fs.of_string spec with
        | Ok rules -> Chaos.Fs.arm rules
        | Error msg -> die "%s" msg));
    report_estimator ~algo ~norgs;
    let federated = federation_spec <> None in
    let service =
      service_config ~model ~norgs ~machines ~horizon ~algorithm:algo ~seed
        ~split ~max_restarts ~workers ~groups ~federated
    in
    (* A SPEC|FILE value is validated against the booted cluster shape now
       (fail fast, exit 2); the events themselves arrive over the socket —
       `fairsched endow --script FILE` replays the same script live. *)
    report_federation
      (resolve_federation ~machines_per_org:service.Service.Config.machines
         ~horizon ~seed federation_spec);
    with_obs ~trace ~metrics @@ fun () ->
    (* The live observability plane is always on for a daemon: `ctl
       metrics` and `ctl trace` must answer without a restart, and the
       per-request cost is one atomic load per instrument when nothing
       scrapes.  --trace/--metrics still control the exit-time dumps. *)
    Obs.Metrics.set_enabled true;
    Obs.Trace.set_enabled true;
    let overload =
      {
        Service.Overload.default with
        queue_high = Float.min 1.0 overload_queue;
        queue_low =
          Float.min Service.Overload.default.Service.Overload.queue_low
            (overload_queue /. 2.);
        ack_high_ms = overload_ms;
        ack_low_ms =
          Float.min Service.Overload.default.Service.Overload.ack_low_ms
            (overload_ms /. 4.);
        trip_ms = overload_trip;
        recover_ms = overload_recover;
      }
    in
    let cfg =
      Service.Server.make_config ?state_dir:state ~queue_cap ~snapshot_every
        ?degrade_to:degrade ~overload ~shards
        ~commit_interval:(commit_interval /. 1000.) ~addr:listen ~service ()
    in
    let ready () =
      Format.printf "fairsched serve: %a listening on %a%s@."
        Service.Config.pp service Service.Addr.pp listen
        (match state with
        | None -> " (ephemeral)"
        | Some dir -> Printf.sprintf " (state: %s)" dir)
    in
    match Service.Server.run ~ready cfg with
    | Ok () -> Format.printf "fairsched serve: drained, bye@."
    | Error msg -> die "%s" msg
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online scheduler daemon: accepts job submissions and \
          fault events over a socket, schedules them live, and (with \
          --state) survives kill -9 by WAL replay.")
    Term.(
      const run $ listen_arg $ state_arg $ model_arg $ algo_arg
      $ estimator_arg $ norgs_arg
      $ machines_arg $ horizon_arg 50_000 $ seed_arg $ split_arg $ workers_arg
      $ max_restarts_arg $ queue_cap_arg $ snapshot_every_arg $ chaos_arg
      $ degrade_arg $ overload_queue_arg $ overload_ms_arg $ overload_trip_arg
      $ overload_recover_arg $ groups_arg $ shards_arg $ commit_interval_arg
      $ federation_arg $ log_level_arg $ log_file_arg $ trace_arg
      $ metrics_arg)

let submit_cmd =
  let org_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "org" ] ~docv:"U" ~doc:"Submitting organization (0-based).")
  in
  let size_arg =
    Arg.(
      required
      & opt (some (positive_int_conv "--size")) None
      & info [ "size"; "p" ] ~docv:"P" ~doc:"Processing time (simulated units).")
  in
  let release_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "release"; "r" ] ~docv:"T"
          ~doc:
            "Release instant (simulated time).  Default: the daemon's \
             current admission frontier.")
  in
  let user_arg =
    Arg.(
      value & opt int 0
      & info [ "user" ] ~docv:"UID" ~doc:"Originating user id (metadata).")
  in
  let run addr org size release user timeout_s =
    let client = connect_or_die ~timeout_s addr in
    Fun.protect
      ~finally:(fun () -> Service.Client.close client)
      (fun () ->
        let release =
          match release with
          | Some r -> r
          | None -> (
              match request_or_die client Service.Protocol.Status with
              | Service.Protocol.Status_ok st -> st.Service.Protocol.frontier
              | _ -> die "unexpected response to status")
        in
        match
          request_or_die client
            (Service.Protocol.Submit
               { org; user; release; size; cid = 0; cseq = 0; trace = 0 })
        with
        | Service.Protocol.Submit_ok { seq; org; index; now } ->
            Format.printf "accepted seq=%d org=%d rank=%d release=%d now=%d@."
              seq org index release now
        | _ -> die "unexpected response to submit")
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit one job to a running daemon.")
    Term.(
      const run $ to_arg $ org_arg $ size_arg $ release_arg $ user_arg
      $ timeout_arg)

let endow_cmd =
  let kind_arg =
    Arg.(
      value
      & pos 0
          (some
             (enum
                [
                  ("join", `Join); ("leave", `Leave); ("lend", `Lend);
                  ("reclaim", `Reclaim);
                ]))
          None
      & info [] ~docv:"KIND" ~doc:"join | leave | lend | reclaim")
  in
  let org_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "org" ] ~docv:"U" ~doc:"Acting organization (0-based).")
  in
  let to_org_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "to-org" ] ~docv:"V" ~doc:"Borrowing organization (lend only).")
  in
  let machines_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "machines" ] ~docv:"M,M,.."
          ~doc:
            "Global machine ids the event names.  Required for lend and \
             reclaim; optional for join (empty readmits all of the org's \
             absent home machines).")
  in
  let time_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "time" ] ~docv:"T"
          ~doc:
            "Event instant (simulated time).  Default: the daemon's current \
             admission frontier.")
  in
  let script_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Replay a whole endowment script (the --federation file format) \
             against the daemon, one $(b,endow) request per event in trace \
             order.  Mutually exclusive with KIND.")
  in
  let run addr kind org to_org machines time script timeout_s =
    let client = connect_or_die ~timeout_s addr in
    Fun.protect
      ~finally:(fun () -> Service.Client.close client)
      (fun () ->
        let frontier () =
          match request_or_die client Service.Protocol.Status with
          | Service.Protocol.Status_ok st -> st.Service.Protocol.frontier
          | _ -> die "unexpected response to status"
        in
        let send time event =
          match
            request_or_die client
              (Service.Protocol.Endow
                 { time; event; cid = 0; cseq = 0; trace = 0 })
          with
          | Service.Protocol.Endow_ok { seq; now } ->
              Format.printf "accepted seq=%d %a now=%d@." seq
                Federation.Event.pp_timed
                { Federation.Event.time; event }
                now
          | _ -> die "unexpected response to endow"
        in
        match (script, kind) with
        | Some _, Some _ -> die "--script and KIND are mutually exclusive"
        | Some path, None -> (
            match Federation.Model.load_script path with
            | Error msg -> die "%s" msg
            | Ok trace ->
                List.iter
                  (fun { Federation.Event.time; event } -> send time event)
                  trace)
        | None, None -> die "endow needs KIND (join|leave|lend|reclaim) or --script"
        | None, Some kind ->
            let org =
              match org with
              | Some org -> org
              | None -> die "endow KIND needs --org"
            in
            let event =
              match kind with
              | `Join -> Federation.Event.Join { org; machines }
              | `Leave ->
                  if machines <> [] then die "leave names no machines";
                  Federation.Event.Leave { org }
              | `Lend -> (
                  if machines = [] then die "lend needs --machines";
                  match to_org with
                  | Some to_org -> Federation.Event.Lend { org; to_org; machines }
                  | None -> die "lend needs --to-org")
              | `Reclaim ->
                  if machines = [] then die "reclaim needs --machines";
                  Federation.Event.Reclaim { org; machines }
            in
            let time =
              match time with Some t -> t | None -> frontier ()
            in
            send time event)
  in
  Cmd.v
    (Cmd.info "endow"
       ~doc:
         "Send endowment events — consortium joins/leaves, machine \
          lends/reclaims — to a running federated daemon (one started with \
          --federation).")
    Term.(
      const run $ to_arg $ kind_arg $ org_arg $ to_org_arg $ machines_arg
      $ time_arg $ script_arg $ timeout_arg)

let status_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the raw JSON response.")
  in
  let run addr json timeout_s =
    let client = connect_or_die ~timeout_s addr in
    Fun.protect
      ~finally:(fun () -> Service.Client.close client)
      (fun () ->
        match request_or_die client Service.Protocol.Status with
        | Service.Protocol.Status_ok st as resp ->
            if json then
              print_string
                (Service.Protocol.response_to_line resp)
            else begin
              Format.printf
                "now %d  frontier %d  horizon %d  orgs %d  machines %d%s@."
                st.Service.Protocol.now st.Service.Protocol.frontier
                st.Service.Protocol.horizon st.Service.Protocol.orgs
                st.Service.Protocol.machines
                (if st.Service.Protocol.draining then "  DRAINING" else "");
              Format.printf "accepted %d  rejected %d  queue %d/%d@."
                st.Service.Protocol.accepted st.Service.Protocol.rejected
                st.Service.Protocol.queue_depth st.Service.Protocol.queue_cap;
              Format.printf "estimator %s%s  shed %d  ack ewma %.1fms@."
                st.Service.Protocol.estimator
                (if st.Service.Protocol.degraded then " (DEGRADED)" else "")
                st.Service.Protocol.shed st.Service.Protocol.ack_ewma_ms;
              if st.Service.Protocol.groups > 1 then
                Format.printf "groups %d  shards %d  fsyncs %d@."
                  st.Service.Protocol.groups st.Service.Protocol.shards
                  st.Service.Protocol.fsyncs;
              Format.printf "waiting per org: %s@."
                (String.concat " "
                   (Array.to_list
                      (Array.map string_of_int st.Service.Protocol.waiting)));
              Format.printf "kernel: %a@." Kernel.Stats.pp
                st.Service.Protocol.stats;
              match st.Service.Protocol.job_wait with
              | None -> ()
              | Some s ->
                  Format.printf
                    "job wait (sim time): p50 %.0f  p90 %.0f  p99 %.0f  max \
                     %.0f (n=%d)@."
                    s.Obs.Metrics.p50 s.Obs.Metrics.p90 s.Obs.Metrics.p99
                    s.Obs.Metrics.max s.Obs.Metrics.count
            end
        | _ -> die "unexpected response to status")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Query a running daemon's state.")
    Term.(const run $ to_arg $ json_arg $ timeout_arg)

(* --- top: the live dashboard over ctl metrics ----------------------------- *)

let top_cmd =
  let addr_pos =
    Arg.(
      value & pos 0 addr_conv default_addr
      & info [] ~docv:"ADDR"
          ~doc:
            "Daemon address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare \
             socket path.")
  in
  let interval_arg =
    Arg.(
      value
      & opt (nonneg_float_conv "--interval") 1.0
      & info [ "interval" ] ~docv:"SEC" ~doc:"Seconds between refreshes.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count"; "n" ] ~docv:"N"
          ~doc:
            "Stop after N refreshes; 0 polls until interrupted or the \
             daemon goes away.")
  in
  let run addr interval count timeout_s =
    let client = connect_or_die ~timeout_s addr in
    let request req =
      match Service.Client.request client req with
      | Ok (Service.Protocol.Error { code; msg; _ }) ->
          die "daemon refused (%s): %s"
            (Service.Protocol.error_code_to_string code)
            msg
      | Ok resp -> resp
      | Error e ->
          (* the daemon drained or died mid-watch: that's a normal way for
             a dashboard to end, not a usage error *)
          Format.printf "daemon at %a gone: %s@." Service.Addr.pp addr
            (Service.Client.error_to_string e);
          exit 0
    in
    let render () =
      let st =
        match request Service.Protocol.Status with
        | Service.Protocol.Status_ok st -> st
        | _ -> die "unexpected response to status"
      in
      let m =
        match request Service.Protocol.Metrics with
        | Service.Protocol.Metrics_ok { metrics } -> metrics
        | _ -> die "unexpected response to metrics"
      in
      let fields = match m with Obs.Json.Obj l -> l | _ -> [] in
      let num = function
        | Obs.Json.Int n -> Some (float_of_int n)
        | Obs.Json.Float f -> Some f
        | _ -> None
      in
      let metric name = Option.bind (List.assoc_opt name fields) num in
      let summary name =
        match List.assoc_opt name fields with
        | Some (Obs.Json.Obj _ as s) -> (
            let g k = Option.bind (Obs.Json.member s k) Obs.Json.get_number in
            match (g "count", g "p50", g "p99", g "max") with
            | Some count, Some p50, Some p99, Some max when count > 0. ->
                Some (int_of_float count, p50, p99, max)
            | _ -> None)
        | _ -> None
      in
      (* gauges published under a numbered suffix, e.g. fair.psi_org<N> *)
      let by_suffix prefix =
        let plen = String.length prefix in
        List.filter_map
          (fun (n, v) ->
            if String.length n > plen && String.sub n 0 plen = prefix then
              match
                (int_of_string_opt (String.sub n plen (String.length n - plen)),
                 num v)
              with
              | Some i, Some f -> Some (i, f)
              | _ -> None
            else None)
          fields
        |> List.sort compare
      in
      if Unix.isatty Unix.stdout then print_string "\027[H\027[2J";
      let tm = Unix.localtime (Unix.gettimeofday ()) in
      Format.printf "fairsched top — %a — %02d:%02d:%02d@." Service.Addr.pp
        addr tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec;
      Format.printf "now %d  frontier %d  horizon %d  orgs %d  machines %d%s@."
        st.Service.Protocol.now st.Service.Protocol.frontier
        st.Service.Protocol.horizon st.Service.Protocol.orgs
        st.Service.Protocol.machines
        (if st.Service.Protocol.draining then "  DRAINING" else "");
      Format.printf
        "accepted %d  rejected %d  shed %d  queue %d/%d  estimator %s%s@."
        st.Service.Protocol.accepted st.Service.Protocol.rejected
        st.Service.Protocol.shed st.Service.Protocol.queue_depth
        st.Service.Protocol.queue_cap st.Service.Protocol.estimator
        (if st.Service.Protocol.degraded then " (DEGRADED)" else "");
      Format.printf "groups %d  shards %d  fsyncs %d  ack ewma %.1fms@."
        st.Service.Protocol.groups st.Service.Protocol.shards
        st.Service.Protocol.fsyncs st.Service.Protocol.ack_ewma_ms;
      let psi = by_suffix "fair.psi_org" in
      let p = by_suffix "fair.p_org" in
      if psi <> [] then begin
        Format.printf "@.fairness (utility psi vs executed parts p, per org):@.";
        Format.printf "  %4s  %12s  %12s  %10s@." "org" "psi" "p" "|psi-p|";
        List.iter
          (fun (org, v) ->
            match List.assoc_opt org p with
            | Some pv ->
                Format.printf "  %4d  %12.1f  %12.1f  %10.1f@." org v pv
                  (Float.abs (v -. pv))
            | None -> Format.printf "  %4d  %12.1f  %12s  %10s@." org v "-" "-")
          psi;
        let drifts = by_suffix "fair.drift_max_g" in
        let budgets = by_suffix "fair.estimator_budget_g" in
        let pp_pairs ppf l =
          List.iter (fun (g, v) -> Format.fprintf ppf "  g%d %.0f" g v) l
        in
        if drifts <> [] then
          Format.printf "  max drift per group:%a@." pp_pairs drifts;
        if budgets <> [] then
          Format.printf "  estimator sample budget (Thm 5.6):%a@." pp_pairs
            budgets
      end;
      (* consortium membership gauges, published only by federated daemons *)
      (match metric "fed.orgs_active" with
      | Some active ->
          Format.printf "@.federation: orgs active %.0f" active;
          List.iter
            (fun (g, v) -> Format.printf "  lent out g%d %.0f" g v)
            (by_suffix "fed.machines_lent_g");
          Format.printf "@."
      | None -> ());
      let counter_row =
        [
          ("acks", "service.acks_total");
          ("fsyncs", "service.fsync_total");
          ("shed", "service.shed");
          ("dup acks", "service.dup_acks");
          ("wal failures", "service.wal_sync_failures");
          ("degrades", "service.degrade_switches");
          ("recovers", "service.recover_switches");
        ]
      in
      Format.printf "@.service:";
      List.iter
        (fun (label, name) ->
          match metric name with
          | Some v -> Format.printf "  %s %.0f" label v
          | None -> ())
        counter_row;
      Format.printf "@.";
      List.iter
        (fun (label, name) ->
          match summary name with
          | Some (n, p50, p99, max) ->
              Format.printf "  %-16s p50 %8.0f  p99 %8.0f  max %8.0f  (n=%d)@."
                label p50 p99 max n
          | None -> ())
        [
          ("fsync (us)", "service.fsync_us");
          ("commit hold (us)", "service.commit_hold_us");
          ("job wait (sim)", "sim.job_wait");
        ];
      let estimator_row =
        [
          ("vcache hits", "rand.vcache_hits");
          ("vcache misses", "rand.vcache_misses");
          ("orders sampled", "rand.orders_sampled");
        ]
      in
      if List.exists (fun (_, n) -> metric n <> None) estimator_row then begin
        Format.printf "estimator:";
        List.iter
          (fun (label, name) ->
            match metric name with
            | Some v -> Format.printf "  %s %.0f" label v
            | None -> ())
          estimator_row;
        Format.printf "@."
      end
    in
    Fun.protect
      ~finally:(fun () -> Service.Client.close client)
      (fun () ->
        let rec loop i =
          render ();
          if count = 0 || i < count then begin
            Unix.sleepf (Float.max 0.05 interval);
            loop (i + 1)
          end
        in
        loop 1)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running daemon: polls status and the \
          metrics scrape, rendering fairness SLOs (per-org psi vs executed \
          parts, drift, estimator sample budget), throughput counters, and \
          durability latency percentiles.")
    Term.(const run $ addr_pos $ interval_arg $ count_arg $ timeout_arg)

(* JSON rows for `ctl wal-check --json`: one object per inspected file or
   segment, status plus the counters pp_check prints, corruption with its
   file/line/offset/reason so tooling can point at the damage. *)
let check_report_json (r : Service.Wal.check_report) =
  let open Obs.Json in
  Obj
    (List.concat
       [
         [
           ("status", String "ok");
           ( "kind",
             String
               (match r.Service.Wal.ck_kind with
               | `Wal -> "wal"
               | `Snapshot -> "snapshot"
               | `State_dir -> "state-dir") );
           ("submits", Int r.Service.Wal.ck_submits);
           ("faults", Int r.Service.Wal.ck_faults);
           ("modes", Int r.Service.Wal.ck_modes);
           ("first_seq", Int r.Service.Wal.ck_first_seq);
           ("last_seq", Int r.Service.Wal.ck_last_seq);
           ( "gaps",
             List
               (List.map
                  (fun (a, b) -> Obj [ ("after", Int a); ("next", Int b) ])
                  r.Service.Wal.ck_gaps) );
         ];
         (match r.Service.Wal.ck_torn with
         | None -> []
         | Some (line, offset, bytes) ->
             [
               ( "torn_tail",
                 Obj
                   [
                     ("line", Int line);
                     ("offset", Int offset);
                     ("bytes", Int bytes);
                   ] );
             ]);
       ])

let boot_error_json (e : Service.Wal.boot_error) =
  let open Obs.Json in
  match e with
  | Service.Wal.Io msg -> Obj [ ("status", String "io-error"); ("error", String msg) ]
  | Service.Wal.Mismatch msg ->
      Obj [ ("status", String "mismatch"); ("error", String msg) ]
  | Service.Wal.Corrupt c ->
      Obj
        [
          ("status", String "corrupt");
          ("file", String c.Service.Wal.c_file);
          ("line", Int c.Service.Wal.c_line);
          ("offset", Int c.Service.Wal.c_offset);
          ("reason", String c.Service.Wal.c_reason);
        ]

let ctl_cmd =
  let which_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("psi", `Psi); ("snapshot", `Snapshot);
                            ("drain", `Drain); ("wal-check", `Wal_check);
                            ("metrics", `Metrics); ("trace", `Trace) ]))
          None
      & info [] ~docv:"CMD"
          ~doc:"psi | snapshot | drain | wal-check | metrics | trace")
  in
  let file_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "For wal-check: a WAL file, a snapshot file, or a state \
             directory to inspect offline.  For metrics/trace: write the \
             scraped JSON there instead of stdout.")
  in
  let detail_arg =
    Arg.(
      value & flag
      & info [ "detail" ]
          ~doc:"With drain: include the full schedule in the report.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "With wal-check: machine-readable output — one JSON document \
             with a per-segment status array.  The exit code contract is \
             unchanged (0 intact, 2 corrupt).")
  in
  let limit_arg =
    Arg.(
      value
      & opt (positive_int_conv "--limit") Service.Protocol.default_trace_limit
      & info [ "limit" ] ~docv:"N"
          ~doc:
            "With trace: keep only the most recent N events (the response \
             must fit the wire's line limit).")
  in
  let emit_json ~file doc =
    let text = Obs.Json.to_string ~pretty:true doc in
    match file with
    | None -> print_string (text ^ "\n")
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        output_char oc '\n';
        close_out oc;
        Format.printf "wrote %s@." path
  in
  let wal_check ~json file =
    match file with
    | None -> die "wal-check needs a FILE argument (WAL, snapshot, or state dir)"
    | Some path -> (
        (* A segmented state dir (wal-<g>/ per org-group) gets every
           segment checked independently; one corrupt segment fails the
           whole inspection, same exit-2 contract as a corrupt flat WAL. *)
        let seg_groups =
          if Sys.file_exists path && Sys.is_directory path then
            Service.Wal.segments ~dir:path
          else []
        in
        match seg_groups with
        | [] -> (
            match Service.Wal.check path with
            | Ok report ->
                if json then
                  emit_json ~file:None
                    (Obs.Json.Obj
                       [
                         ("path", Obs.Json.String path);
                         ("segments", Obs.Json.List [ check_report_json report ]);
                       ])
                else Format.printf "%a" Service.Wal.pp_check report
            | Error e ->
                if json then begin
                  emit_json ~file:None
                    (Obs.Json.Obj
                       [
                         ("path", Obs.Json.String path);
                         ("segments", Obs.Json.List [ boot_error_json e ]);
                       ]);
                  exit 2
                end
                else die "%s" (Service.Wal.boot_error_to_string e))
        | groups ->
            let seg_json = ref [] in
            let corrupt =
              List.fold_left
                (fun corrupt g ->
                  let dir = Service.Wal.segment_dir ~dir:path ~group:g in
                  if not json then Format.printf "segment %d (%s):@." g dir;
                  match Service.Wal.check dir with
                  | Ok report ->
                      if json then
                        seg_json :=
                          (match check_report_json report with
                          | Obs.Json.Obj fields ->
                              Obs.Json.Obj
                                (("group", Obs.Json.Int g) :: fields)
                          | j -> j)
                          :: !seg_json
                      else Format.printf "%a" Service.Wal.pp_check report;
                      corrupt
                  | Error e ->
                      if json then
                        seg_json :=
                          (match boot_error_json e with
                          | Obs.Json.Obj fields ->
                              Obs.Json.Obj
                                (("group", Obs.Json.Int g) :: fields)
                          | j -> j)
                          :: !seg_json
                      else
                        Format.printf "  %s@."
                          (Service.Wal.boot_error_to_string e);
                      corrupt + 1)
                0 groups
            in
            if json then
              emit_json ~file:None
                (Obs.Json.Obj
                   [
                     ("path", Obs.Json.String path);
                     ("segments", Obs.Json.List (List.rev !seg_json));
                   ]);
            if corrupt > 0 then
              if json then exit 2
              else die "%d of %d segments corrupt" corrupt (List.length groups))
  in
  let run addr which detail json limit file timeout_s =
    match which with
    | `Wal_check -> wal_check ~json file
    | (`Psi | `Snapshot | `Drain | `Metrics | `Trace) as which ->
    let client = connect_or_die ~timeout_s addr in
    Fun.protect
      ~finally:(fun () -> Service.Client.close client)
      (fun () ->
        match which with
        | `Metrics -> (
            match request_or_die client Service.Protocol.Metrics with
            | Service.Protocol.Metrics_ok { metrics } ->
                emit_json ~file metrics
            | _ -> die "unexpected response to metrics")
        | `Trace -> (
            match
              request_or_die client (Service.Protocol.Trace { limit })
            with
            | Service.Protocol.Trace_ok { events; dropped; trace } ->
                emit_json ~file trace;
                Format.eprintf "%d trace events%s@." events
                  (if dropped = 0 then ""
                   else Printf.sprintf ", %d dropped by the ring buffer" dropped)
            | _ -> die "unexpected response to trace")
        | `Psi -> (
            match request_or_die client Service.Protocol.Psi with
            | Service.Protocol.Psi_ok { now; psi_scaled; parts } ->
                Format.printf "now %d@." now;
                Array.iteri
                  (fun u v ->
                    Format.printf "org %d: psi = %.1f  parts = %d@." u
                      (float_of_int v /. 2.)
                      parts.(u))
                  psi_scaled
            | _ -> die "unexpected response to psi")
        | `Snapshot -> (
            match request_or_die client Service.Protocol.Snapshot with
            | Service.Protocol.Snapshot_ok { seq; path } ->
                Format.printf "snapshot through seq %d at %s@." seq path
            | _ -> die "unexpected response to snapshot")
        | `Drain -> (
            match
              request_or_die client (Service.Protocol.Drain { detail })
            with
            | Service.Protocol.Drain_ok r ->
                Format.printf "drained at %d@." r.Service.Protocol.d_now;
                Array.iteri
                  (fun u v ->
                    Format.printf "org %d: psi = %.1f  parts = %d@." u
                      (float_of_int v /. 2.)
                      r.Service.Protocol.d_parts.(u))
                  r.Service.Protocol.d_psi_scaled;
                Format.printf "kernel: %a@." Kernel.Stats.pp
                  r.Service.Protocol.d_stats;
                (match r.Service.Protocol.d_schedule with
                | None -> ()
                | Some rows ->
                    List.iter
                      (fun (org, index, start, machine, duration) ->
                        Format.printf "  J(%d)%d @ %d on m%d for %d@." org
                          index start machine duration)
                      rows)
            | _ -> die "unexpected response to drain"))
  in
  Cmd.v
    (Cmd.info "ctl"
       ~doc:
         "Control a running daemon (psi | snapshot | drain), scrape its \
          live observability plane (metrics | trace), or inspect \
          durability state offline (wal-check FILE).")
    Term.(
      const run $ to_arg $ which_arg $ detail_arg $ json_arg $ limit_arg
      $ file_arg $ timeout_arg)

let loadgen_cmd =
  let rate_arg =
    Arg.(
      value
      & opt (nonneg_float_conv "--rate") 0.
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Target submissions per wall-clock second; 0 streams as fast \
             as the daemon acknowledges.")
  in
  let count_arg =
    Arg.(
      value
      & opt (positive_int_conv "--count") 1000
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Submissions to send.")
  in
  let drain_flag =
    Arg.(
      value & flag
      & info [ "drain" ]
          ~doc:"Send a drain when done (shuts the daemon down).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON.")
  in
  let retry_attempts_arg =
    Arg.(
      value
      & opt (positive_int_conv "--retry-attempts") 8
      & info [ "retry-attempts" ] ~docv:"N"
          ~doc:
            "Tries per submission (including the first) before giving up \
             on backpressure or transport errors.")
  in
  let retry_budget_arg =
    Arg.(
      value
      & opt (nonneg_float_conv "--retry-budget") 30.
      & info [ "retry-budget" ] ~docv:"SEC"
          ~doc:
            "Wall-clock retry budget per submission; 0 removes the bound.")
  in
  let connections_arg =
    Arg.(
      value
      & opt (positive_int_conv "--connections") 1
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "Client connections, one domain each.  Jobs are assigned by \
             org-group (see --groups) so each group's submissions stay on \
             one socket in order.")
  in
  let window_arg =
    Arg.(
      value
      & opt (positive_int_conv "--window") 1
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Max unacked submissions in flight per connection.  1 is the \
             classic closed loop; larger windows pipeline (open loop: \
             backpressure drops instead of retrying).")
  in
  let run addr model norgs machines horizon seed rate count drain json
      retry_attempts retry_budget connections groups window timeout_s =
    check_writable json;
    let spec = Workload.Scenario.default ~norgs ~machines ~horizon model in
    let cfg =
      {
        Service.Loadgen.addr;
        spec;
        seed;
        rate;
        count;
        drain;
        policy =
          Service.Retry.policy ~max_attempts:retry_attempts
            ~budget_ms:(retry_budget *. 1000.) ();
        timeout_s;
        connections;
        groups;
        window;
      }
    in
    match Service.Loadgen.run cfg with
    | Error msg -> die "%s" msg
    | Ok report ->
        Format.printf "%a@." Service.Loadgen.pp_report report;
        (match json with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc
              (Obs.Json.to_string ~pretty:true
                 (Service.Loadgen.report_to_json report));
            output_char oc '\n';
            close_out oc;
            Format.printf "wrote %s@." path);
        if
          report.Service.Loadgen.errors > 0
          || report.Service.Loadgen.gave_up > 0
        then die "submissions lost to exhausted retry budgets"
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Stream a synthetic trace at a running daemon at a target arrival \
          rate; reports accepted/rejected/retry counts and ack-latency \
          percentiles.  Use the same --model/--orgs/--machines/--seed as \
          `fairsched serve` so the cluster shapes agree.")
    Term.(
      const run $ to_arg $ model_arg $ norgs_arg $ machines_arg
      $ horizon_arg 50_000 $ seed_arg $ rate_arg $ count_arg $ drain_flag
      $ json_arg $ retry_attempts_arg $ retry_budget_arg $ connections_arg
      $ groups_arg $ window_arg $ timeout_arg)

(* --- examples / algorithms -------------------------------------------- *)

let examples_cmd =
  let run () =
    let f = Experiments.Worked_examples.figure2 () in
    Format.printf
      "Figure 2 (ψsp worked example):@.\
      \  ψsp(O1, 13) = %.0f (paper: 262)@.\
      \  ψsp(O1, 14) = %.0f (paper: 297)@.\
      \  flow time at 14 = %d (paper: 70)@.\
      \  gain if J(2)1 absent = %.0f (paper: 4)@.\
      \  loss if J6 delayed = %.0f (paper: 6)@.\
      \  loss if J9 dropped = %.0f (paper: 10)@."
      f.psi_o1_at_13 f.psi_o1_at_14 f.flow_time_at_14
      f.gain_without_competitor f.loss_delaying_j6 f.loss_dropping_j9;
    Format.printf "@.Proposition 5.5 (non-supermodularity):@.";
    List.iter
      (fun (c, v) -> Format.printf "  v%a = %.1f@." Shapley.Coalition.pp c v)
      (Experiments.Worked_examples.prop55_values ());
    Format.printf "  supermodular? %b (paper: false)@."
      (Experiments.Worked_examples.prop55_is_supermodular ())
  in
  Cmd.v
    (Cmd.info "examples" ~doc:"Check the paper's worked examples.")
    Term.(const run $ const ())

let algorithms_cmd =
  let run () =
    List.iter (fun n -> Format.printf "%s@." n) Algorithms.Registry.all_names
  in
  Cmd.v
    (Cmd.info "algorithms" ~doc:"List registered scheduling algorithms.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "fairsched" ~version:"1.0.0"
      ~doc:
        "Non-monetary fair scheduling — Shapley-value cooperative-game \
         scheduling (Skowron & Rzadca, SPAA 2013) reproduction."
  in
  let group =
    Cmd.group info
      [
        simulate_cmd; table_cmd; fig10_cmd; utilization_cmd; ablate_cmd;
        trace_cmd; timeline_cmd; churn_cmd; federation_cmd; analyze_cmd;
        report_cmd; examples_cmd; algorithms_cmd; validate_trace_cmd;
        serve_cmd; submit_cmd; endow_cmd; status_cmd; top_cmd; ctl_cmd;
        loadgen_cmd;
      ]
  in
  (* Robustness contract: every user error — unknown subcommand, bad flag,
     failed flag conversion, unreadable trace file — exits 2 with a one-line
     message, never a backtrace.  [eval_value ~catch:false] lets us collapse
     cmdliner's error classes and our own runtime exceptions onto that one
     code. *)
  exit
    (try
       match Cmd.eval_value ~catch:false group with
       | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
       | Error (`Parse | `Term | `Exn) -> 2
     with Sys_error msg | Invalid_argument msg | Failure msg ->
       Format.eprintf "fairsched: %s@." msg;
       2)
