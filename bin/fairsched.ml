(* fairsched — command-line front end of the reproduction.

   Subcommands mirror the experiment index of DESIGN.md: `table` regenerates
   Tables 1/2, `fig10` regenerates Figure 10, `utilization` the Section 6
   experiment, `ablate` the ablations, `simulate` runs a single scenario,
   `trace` writes a synthetic SWF file. *)

open Cmdliner

let model_conv =
  let parse s =
    match Workload.Traces.by_name s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown model %S (try %s)" s
                (String.concat ", "
                   (List.map
                      (fun m -> m.Workload.Traces.name)
                      Workload.Traces.all))))
  in
  let print ppf m = Format.fprintf ppf "%s" m.Workload.Traces.name in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_conv Workload.Traces.lpc_egee
    & info [ "model"; "w" ] ~docv:"MODEL"
        ~doc:"Workload model: lpc-egee, pik-iplex, ricc, sharcnet-whale.")

let seed_arg =
  Arg.(value & opt int 2013 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let horizon_arg default =
  Arg.(
    value & opt int default
    & info [ "horizon"; "t" ] ~docv:"SECONDS" ~doc:"Evaluation horizon.")

let machines_arg =
  Arg.(
    value & opt int 16
    & info [ "machines"; "m" ] ~docv:"N"
        ~doc:"Total machine pool (scaled-down stand-in for the trace's pool).")

let norgs_arg =
  Arg.(
    value & opt int 5
    & info [ "orgs"; "k" ] ~docv:"K" ~doc:"Number of organizations.")

let instances_arg default =
  Arg.(
    value & opt int default
    & info [ "instances"; "n" ] ~docv:"N"
        ~doc:"Random instances per experimental cell.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel-capable algorithms (REF's \
           sub-coalition engine).  1 forces strictly sequential execution; \
           the default is $(b,Domain.recommended_domain_count () - 1).  \
           Results are bit-identical for every worker count.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write results as CSV.")

let progress line = Format.eprintf "  %s@." line

let write_csv path contents =
  match path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Format.printf "wrote %s@." path

(* --- simulate ------------------------------------------------------- *)

let simulate_cmd =
  let algo_arg =
    Arg.(
      value & opt string "ref"
      & info [ "algorithm"; "a" ] ~docv:"NAME"
          ~doc:"Algorithm (see `fairsched algorithms`).")
  in
  let gantt_arg =
    Arg.(
      value & flag
      & info [ "gantt" ] ~doc:"Draw an ASCII Gantt chart of the schedule.")
  in
  let run model algo norgs machines horizon seed workers gantt =
    match Algorithms.Registry.find algo with
    | None ->
        Format.printf "unknown algorithm %S@." algo;
        exit 1
    | Some maker ->
        let spec =
          Workload.Scenario.default ~norgs ~machines ~horizon model
        in
        let instance = Workload.Scenario.instance spec ~seed in
        Format.printf "%a@." Core.Instance.pp instance;
        let rng = Fstats.Rng.create ~seed in
        let result = Sim.Driver.run ?workers ~instance ~rng maker in
        Format.printf "%a@." Sim.Driver.pp_result result;
        Format.printf "utilization: %.3f  wall: %.2fs@."
          (Core.Schedule.utilization result.Sim.Driver.schedule ~upto:horizon)
          result.Sim.Driver.wall_seconds;
        if gantt then
          print_string
            (Core.Gantt.render ~upto:horizon result.Sim.Driver.schedule)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one algorithm on one synthetic scenario.")
    Term.(
      const run $ model_arg $ algo_arg $ norgs_arg $ machines_arg
      $ horizon_arg 50_000 $ seed_arg $ workers_arg $ gantt_arg)

(* --- table ----------------------------------------------------------- *)

let table_cmd =
  let run horizon instances machines csv =
    let config =
      if horizon >= 500_000 then
        { (Experiments.Tables.table2_config ~instances ~machines ()) with
          horizon }
      else
        { (Experiments.Tables.table1_config ~instances ~machines ()) with
          horizon }
    in
    let table = Experiments.Tables.run ~progress config in
    Format.printf "Average unjustified delay Δψ/p_tot (horizon %d, %d \
                   instances, %d machines, k=%d)@.@."
      horizon instances machines config.Experiments.Tables.norgs;
    Format.printf "%a@." Experiments.Tables.pp table;
    write_csv csv (Experiments.Tables.to_csv table)
  in
  Cmd.v
    (Cmd.info "table"
       ~doc:
         "Regenerate Table 1 (default) or Table 2 (--horizon 500000): \
          unfairness of each algorithm on each workload.")
    Term.(
      const run $ horizon_arg 50_000 $ instances_arg 10 $ machines_arg
      $ csv_arg)

(* --- fig10 ----------------------------------------------------------- *)

let fig10_cmd =
  let max_orgs_arg =
    Arg.(
      value & opt int 8
      & info [ "max-orgs" ] ~docv:"K"
          ~doc:"Largest organization count (REF cost grows as 3^K).")
  in
  let run instances horizon max_orgs csv =
    let config =
      Experiments.Fig10.default_config ~instances ~horizon ~max_orgs ()
    in
    let figure = Experiments.Fig10.run ~progress config in
    Format.printf "Unfairness vs number of organizations (LPC-EGEE)@.@.%a@."
      Experiments.Fig10.pp figure;
    write_csv csv (Experiments.Fig10.to_csv figure)
  in
  Cmd.v
    (Cmd.info "fig10"
       ~doc:"Regenerate Figure 10: Δψ/p_tot as the number of organizations \
             grows.")
    Term.(
      const run $ instances_arg 5 $ horizon_arg 50_000 $ max_orgs_arg
      $ csv_arg)

(* --- utilization ------------------------------------------------------ *)

let utilization_cmd =
  let run () =
    Format.printf
      "Theorem 6.2 / Figure 7: greedy utilization vs the optimum@.@.";
    Format.printf "%-5s %-5s | %-12s %-12s %-8s %-8s@." "m" "p" "worst greedy"
      "best greedy" "optimal" "ratio";
    List.iter
      (fun (r : Experiments.Worked_examples.utilization_row) ->
        Format.printf "%-5d %-5d | %-12.4f %-12.4f %-8.4f %-8.4f@." r.m r.p
          r.greedy_worst r.greedy_best r.optimal r.ratio)
      (Experiments.Worked_examples.utilization_sweep
         [ (2, 2); (2, 5); (4, 3); (4, 10); (6, 4); (8, 3) ])
  in
  Cmd.v
    (Cmd.info "utilization"
       ~doc:"Regenerate the Section 6 tight ¾-competitiveness experiment.")
    Term.(const run $ const ())

(* --- ablate ----------------------------------------------------------- *)

let ablate_cmd =
  let which_arg =
    Arg.(
      value & pos 0 (enum [ ("rand", `Rand); ("endowment", `Endowment);
                            ("load", `Load) ]) `Rand
      & info [] ~docv:"WHICH" ~doc:"rand | endowment | load")
  in
  let run which instances horizon seed =
    let rows =
      match which with
      | `Rand ->
          Experiments.Ablations.rand_sample_sweep ~instances ~horizon ~seed ()
      | `Endowment ->
          Experiments.Ablations.endowment_sweep ~instances ~horizon ~seed ()
      | `Load -> Experiments.Ablations.load_sweep ~instances ~horizon ~seed ()
    in
    Format.printf "%a" Experiments.Ablations.pp_rows rows
  in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Run an ablation sweep (rand | endowment | load).")
    Term.(
      const run $ which_arg $ instances_arg 5 $ horizon_arg 50_000 $ seed_arg)

(* --- trace ------------------------------------------------------------ *)

let trace_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output SWF file.")
  in
  let run model machines horizon seed out =
    let rng = Fstats.Rng.create ~seed in
    let entries =
      Workload.Traces.generate model ~rng ~machines ~duration:horizon ()
    in
    let header =
      [
        Printf.sprintf "Synthetic %s model trace" model.Workload.Traces.name;
        Printf.sprintf "MaxProcs: %d" machines;
        Printf.sprintf "seed: %d  duration: %d" seed horizon;
      ]
    in
    Workload.Swf.save out { Workload.Swf.header; entries };
    Format.printf "wrote %d jobs to %s@." (List.length entries) out
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate a synthetic SWF trace file.")
    Term.(
      const run $ model_arg $ machines_arg $ horizon_arg 50_000 $ seed_arg
      $ out_arg)

(* --- timeline ---------------------------------------------------------- *)

let timeline_cmd =
  let run horizon instances csv =
    let config =
      Experiments.Timeline.default_config ~horizon ~instances ()
    in
    let figure = Experiments.Timeline.run config in
    Format.printf "Unfairness over time (Δψ(t)/p_tot(t))@.@.%a@."
      Experiments.Timeline.pp figure;
    write_csv csv (Experiments.Timeline.to_csv figure)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Track how unfairness accumulates over the trace (Definition              3.2 is per-instant).")
    Term.(const run $ horizon_arg 200_000 $ instances_arg 3 $ csv_arg)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file"; "f" ] ~docv:"FILE"
          ~doc:"SWF trace file to analyze (default: generate from --model).")
  in
  let run model machines horizon seed file =
    let entries =
      match file with
      | Some path -> (Workload.Swf.load path).Workload.Swf.entries
      | None ->
          Workload.Traces.generate model
            ~rng:(Fstats.Rng.create ~seed)
            ~machines ~duration:horizon ()
    in
    if entries = [] then begin
      Format.printf "empty trace@.";
      exit 1
    end;
    Format.printf "%a" Workload.Analysis.pp
      (Workload.Analysis.of_entries ~machines entries)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Descriptive statistics of a trace (SWF file or synthetic model).")
    Term.(
      const run $ model_arg $ machines_arg $ horizon_arg 50_000 $ seed_arg
      $ file_arg)

(* --- report ------------------------------------------------------------ *)

let report_cmd =
  let out_arg =
    Arg.(
      value & opt string "report.html"
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output HTML file.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller instance counts.")
  in
  let run out quick =
    let config = Report.Builder.default_config ~quick () in
    let html = Report.Builder.build ~progress:(fun s -> Format.eprintf "  .. %s@." s) config in
    Report.Builder.save ~path:out html;
    Format.printf "wrote %s (%d bytes)@." out (String.length html)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Generate a self-contained HTML report with SVG charts of every              experiment.")
    Term.(const run $ out_arg $ quick_arg)

(* --- examples / algorithms -------------------------------------------- *)

let examples_cmd =
  let run () =
    let f = Experiments.Worked_examples.figure2 () in
    Format.printf
      "Figure 2 (ψsp worked example):@.\
      \  ψsp(O1, 13) = %.0f (paper: 262)@.\
      \  ψsp(O1, 14) = %.0f (paper: 297)@.\
      \  flow time at 14 = %d (paper: 70)@.\
      \  gain if J(2)1 absent = %.0f (paper: 4)@.\
      \  loss if J6 delayed = %.0f (paper: 6)@.\
      \  loss if J9 dropped = %.0f (paper: 10)@."
      f.psi_o1_at_13 f.psi_o1_at_14 f.flow_time_at_14
      f.gain_without_competitor f.loss_delaying_j6 f.loss_dropping_j9;
    Format.printf "@.Proposition 5.5 (non-supermodularity):@.";
    List.iter
      (fun (c, v) -> Format.printf "  v%a = %.1f@." Shapley.Coalition.pp c v)
      (Experiments.Worked_examples.prop55_values ());
    Format.printf "  supermodular? %b (paper: false)@."
      (Experiments.Worked_examples.prop55_is_supermodular ())
  in
  Cmd.v
    (Cmd.info "examples" ~doc:"Check the paper's worked examples.")
    Term.(const run $ const ())

let algorithms_cmd =
  let run () =
    List.iter (fun n -> Format.printf "%s@." n) Algorithms.Registry.all_names
  in
  Cmd.v
    (Cmd.info "algorithms" ~doc:"List registered scheduling algorithms.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "fairsched" ~version:"1.0.0"
      ~doc:
        "Non-monetary fair scheduling — Shapley-value cooperative-game \
         scheduling (Skowron & Rzadca, SPAA 2013) reproduction."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd; table_cmd; fig10_cmd; utilization_cmd; ablate_cmd;
            trace_cmd; timeline_cmd; analyze_cmd; report_cmd; examples_cmd;
            algorithms_cmd;
          ]))
