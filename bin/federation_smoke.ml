(* End-to-end smoke for the federation subsystem, driven through the REAL
   `fairsched` binary (argv.(1)):

   one endowment script — lend/reclaim cycles between adjacent orgs plus a
   full leave/rejoin — is played twice against the same workload:

   1. batch: `Sim.Driver.run ~federation` over the full instance (the
      study path `fairsched federation` builds on);
   2. served: a federated daemon (`serve --federation`) fed the same jobs
      and endow events interleaved in global time order over the socket,
      SIGKILLed mid-churn (after the leave/rejoin, with half the lend
      cycles still ahead), restarted on its state dir, fed the rest, and
      drained.

   The final ψsp vector and kernel counters must agree bit for bit —
   endowment churn is input, the WAL stores it, so replay is complete.

   Any argv after the exe path is passed through to the `serve`
   invocation — `federation_smoke fairsched --groups 2 --shards 2` runs
   the gauntlet against a sharded daemon.  As in serve_smoke, grouping
   changes the game (each group pools only its own machines), so with
   --groups G > 1 the golden outcome comes from one batch-equivalent
   Online engine per group fed the same localized stream; the endowment
   script only ever names orgs from the same half of the consortium, so
   it stays group-local for G in {1, 2}.

   Exit 0 on success, 1 with a one-line reason on any failure. *)

let exe = ref ""
let extra_serve_args = ref []
let groups = ref 1
let failures = ref 0

let fail fmt =
  Format.kasprintf
    (fun msg ->
      incr failures;
      Format.eprintf "federation-smoke: FAIL %s@." msg)
    fmt

let fatal fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "federation-smoke: FATAL %s@." msg;
      exit 1)
    fmt

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fairsched-fed-smoke-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  (try rm dir with Sys_error _ | Unix.Unix_error _ -> ());
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- child-process plumbing ---------------------------------------------- *)

let devnull () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644

let spawn_serve args =
  let out = devnull () in
  let pid =
    Unix.create_process !exe
      (Array.of_list
         (Filename.basename !exe :: "serve" :: (args @ !extra_serve_args)))
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  pid

let reap pid =
  try snd (Unix.waitpid [] pid) with Unix.Unix_error _ -> Unix.WEXITED 0

let kill9 pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap pid)

let connect_retry addr =
  let rec go n =
    match Service.Client.connect addr with
    | Ok c -> c
    | Error e ->
        if n = 0 then fatal "connect: %s" (Service.Client.error_to_string e)
        else begin
          Unix.sleepf 0.05;
          go (n - 1)
        end
  in
  go 200

let request client req =
  match Service.Client.request client req with
  | Ok resp -> resp
  | Error e -> fatal "request: %s" (Service.Client.error_to_string e)

let submit_job client (j : Core.Job.t) =
  match
    request client
      (Service.Protocol.Submit
         {
           org = j.Core.Job.org;
           user = j.Core.Job.user;
           release = j.Core.Job.release;
           size = j.Core.Job.size;
           cid = 0;
           cseq = 0;
           trace = 0;
         })
  with
  | Service.Protocol.Submit_ok { index; _ } ->
      if index <> j.Core.Job.index then
        fail "served rank %d <> batch rank %d" index j.Core.Job.index
  | Service.Protocol.Error { msg; _ } -> fatal "submit rejected: %s" msg
  | _ -> fatal "submit: unexpected response"

let send_endow client ({ Federation.Event.time; event } : Federation.Event.timed)
    =
  match
    request client
      (Service.Protocol.Endow { time; event; cid = 0; cseq = 0; trace = 0 })
  with
  | Service.Protocol.Endow_ok _ -> ()
  | Service.Protocol.Error { msg; _ } ->
      fatal "endow %a rejected: %s" Federation.Event.pp event msg
  | _ -> fatal "endow: unexpected response"

(* --- the endowment script ------------------------------------------------- *)

(* Built from the daemon's own machine split (split_and_map, same spec and
   seed), so the global machine ids below are exactly the ids the served
   cluster uses.  Events pair adjacent orgs — (0,1) and (2,3) — so the
   script is group-local under --groups 2's contiguous blocks. *)
let script_of_split (machines_per_org : int array) =
  let start u =
    let s = ref 0 in
    for v = 0 to u - 1 do
      s := !s + machines_per_org.(v)
    done;
    !s
  in
  let last u = start u + machines_per_org.(u) - 1 in
  let ev time event = { Federation.Event.time; event } in
  [
    ev 1_500 (Federation.Event.Lend { org = 1; to_org = 0; machines = [ last 1 ] });
    ev 4_000 (Federation.Event.Leave { org = 3 });
    ev 4_500 (Federation.Event.Reclaim { org = 1; machines = [ last 1 ] });
    ev 7_000 (Federation.Event.Join { org = 3; machines = [] });
    ev 9_000 (Federation.Event.Lend { org = 2; to_org = 3; machines = [ last 2 ] });
    ev 12_000 (Federation.Event.Reclaim { org = 2; machines = [ last 2 ] });
    ev 15_000 (Federation.Event.Lend { org = 0; to_org = 1; machines = [ last 0 ] });
    ev 17_500 (Federation.Event.Reclaim { org = 0; machines = [ last 0 ] });
  ]

(* Jobs and endow events merged in global time order (endows first at
   ties), which is the only order a live daemon accepts: an endow at time
   T advances the admission frontier to T, so every later submission must
   carry release >= T.  Per-group subsequences of a globally ordered
   stream are ordered too, so the same merge feeds any --groups shape. *)
type feed = Job of Core.Job.t | Endow of Federation.Event.timed

let merge_feeds (jobs : Core.Job.t array) script =
  let rec go acc jobs script =
    match (jobs, script) with
    | [], [] -> List.rev acc
    | [], e :: rest -> go (Endow e :: acc) [] rest
    | j :: rest, [] -> go (Job j :: acc) rest []
    | j :: jrest, e :: erest ->
        if e.Federation.Event.time <= j.Core.Job.release then
          go (Endow e :: acc) jobs erest
        else go (Job j :: acc) jrest script
  in
  go [] (Array.to_list jobs) script

(* --- golden outcome ------------------------------------------------------- *)

let local_endow p event =
  let lorg o = Service.Partition.local_org p o in
  let lmachs ms = List.map (Service.Partition.local_machine p) ms in
  match event with
  | Federation.Event.Join { org; machines } ->
      Federation.Event.Join { org = lorg org; machines = lmachs machines }
  | Federation.Event.Leave { org } -> Federation.Event.Leave { org = lorg org }
  | Federation.Event.Lend { org; to_org; machines } ->
      Federation.Event.Lend
        { org = lorg org; to_org = lorg to_org; machines = lmachs machines }
  | Federation.Event.Reclaim { org; machines } ->
      Federation.Event.Reclaim { org = lorg org; machines = lmachs machines }

(* Unsharded, the golden outcome is the batch Sim.Driver.run of the full
   instance with the full script — the ISSUE's headline equivalence.
   With --groups G > 1 the daemon plays G independent games, so the
   golden comes from one Online engine per group over
   Partition.sub_config, fed the same merged stream with org and machine
   ids localized. *)
let expected_outcome ~service ~algorithm ~seed ~federation instance feeds =
  if !groups = 1 then
    let batch =
      Sim.Driver.run ~instance ~federation
        ~rng:(Fstats.Rng.create ~seed)
        (Algorithms.Registry.find_exn algorithm)
    in
    (batch.Sim.Driver.utilities_scaled, batch.Sim.Driver.stats)
  else begin
    let p = Service.Partition.make service in
    let sessions =
      Array.init !groups (fun g ->
          Service.Online.create (Service.Partition.sub_config p g))
    in
    List.iter
      (function
        | Job (j : Core.Job.t) -> (
            let g = Service.Partition.group_of_org p j.Core.Job.org in
            match
              Service.Online.submit sessions.(g)
                ~org:(Service.Partition.local_org p j.Core.Job.org)
                ~user:j.Core.Job.user ~size:j.Core.Job.size
                ~release:j.Core.Job.release ()
            with
            | Ok _ -> ()
            | Error e ->
                fatal "grouped golden submit: %s"
                  (Service.Online.error_to_string e))
        | Endow { Federation.Event.time; event } -> (
            let g =
              Service.Partition.group_of_org p (Federation.Event.org event)
            in
            match
              Service.Online.endow sessions.(g) ~time (local_endow p event)
            with
            | Ok () -> ()
            | Error e ->
                fatal "grouped golden endow: %s"
                  (Service.Online.error_to_string e)))
      feeds;
    Array.iter Service.Online.drain sessions;
    let psi =
      Service.Partition.scatter_int p (fun g ->
          Service.Online.psi_scaled sessions.(g))
    in
    let stats =
      Kernel.Stats.total
        (Array.to_list (Array.map Service.Online.stats sessions))
    in
    (psi, stats)
  end

(* --- the gauntlet --------------------------------------------------------- *)

let churn_phase dir =
  let seed = 2013 and horizon = 20_000 and norgs = 4 and machines = 8 in
  let algorithm = "ref" in
  let spec =
    Workload.Scenario.default ~norgs ~machines ~horizon
      Workload.Traces.lpc_egee
  in
  let instance = Workload.Scenario.instance spec ~seed in
  let machines_per_org = fst (Workload.Scenario.split_and_map spec ~seed) in
  let script = script_of_split machines_per_org in
  let homes =
    Array.concat
      (List.mapi
         (fun u n -> Array.make n u)
         (Array.to_list machines_per_org))
  in
  (match Federation.Event.validate ~orgs:norgs ~homes script with
  | Ok () -> ()
  | Error msg -> fatal "script invalid: %s" msg);
  let service =
    match
      Service.Config.make ~groups:!groups ~federated:true
        ~machines:machines_per_org ~horizon ~algorithm ~seed ()
    with
    | Ok c -> c
    | Error msg -> fatal "config: %s" msg
  in
  let feeds = merge_feeds instance.Core.Instance.jobs script in
  let expected_psi, expected_stats =
    expected_outcome ~service ~algorithm ~seed ~federation:script instance
      feeds
  in
  (* Kill mid-churn: right after the org-3 rejoin (the 4th endow event),
     with both remaining lend/reclaim cycles still ahead of the WAL. *)
  let cut =
    let rec go i endows = function
      | [] -> fatal "script never reached the 4th endow"
      | Endow _ :: rest ->
          if endows + 1 = 4 then i + 1 else go (i + 1) (endows + 1) rest
      | Job _ :: rest -> go (i + 1) endows rest
    in
    go 0 0 feeds
  in
  let before = List.filteri (fun i _ -> i < cut) feeds in
  let after = List.filteri (fun i _ -> i >= cut) feeds in
  let sock = Filename.concat dir "fed.sock" in
  let state = Filename.concat dir "state" in
  let addr = Service.Addr.Unix_sock sock in
  let serve_args =
    [
      "--listen"; "unix:" ^ sock; "--state"; state;
      "--algorithm"; algorithm; "--orgs"; string_of_int norgs;
      "--machines"; string_of_int machines;
      "--horizon"; string_of_int horizon; "--seed"; string_of_int seed;
      "--federation";
    ]
  in
  let feed_one client = function
    | Job j -> submit_job client j
    | Endow e -> send_endow client e
  in
  (* First life: jobs and churn up to the rejoin, then kill -9 — no
     snapshot, so recovery replays submissions AND endow records from the
     WAL alone. *)
  let pid = spawn_serve serve_args in
  let client = connect_retry addr in
  List.iter (feed_one client) before;
  kill9 pid;
  Service.Client.close client;
  (* Second life: every acked record — endow events included — must
     resurface, then the finished run must match the golden bit for
     bit. *)
  let pid = spawn_serve serve_args in
  let client = connect_retry addr in
  (match request client Service.Protocol.Status with
  | Service.Protocol.Status_ok st ->
      if st.Service.Protocol.accepted <> cut then
        fail "recovered %d acked records, expected %d"
          st.Service.Protocol.accepted cut
  | _ -> fatal "status: unexpected response");
  List.iter (feed_one client) after;
  (match request client (Service.Protocol.Drain { detail = false }) with
  | Service.Protocol.Drain_ok r ->
      if r.Service.Protocol.d_psi_scaled <> expected_psi then
        fail "served psi differs from the batch run of the same script";
      if
        Kernel.Stats.to_json r.Service.Protocol.d_stats
        <> Kernel.Stats.to_json expected_stats
      then fail "served kernel stats differ from the batch run"
  | _ -> fatal "drain: unexpected response");
  Service.Client.close client;
  (match reap pid with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> fail "drained daemon exited %d" c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> fail "drained daemon was signaled");
  if !failures = 0 then
    Format.printf
      "federation-smoke: churn equivalence OK (%d jobs + %d endow events, \
       kill -9 after %d records, groups %d)@."
      (Array.length instance.Core.Instance.jobs)
      (List.length script) cut !groups

let () =
  if Array.length Sys.argv < 2 then
    fatal "usage: federation_smoke FAIRSCHED_EXE [SERVE_ARGS...]";
  exe :=
    (if Filename.is_relative Sys.argv.(1) then
       Filename.concat (Sys.getcwd ()) Sys.argv.(1)
     else Sys.argv.(1));
  extra_serve_args :=
    Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2));
  (let rec scan = function
     | "--groups" :: v :: rest ->
         groups := int_of_string v;
         scan rest
     | _ :: rest -> scan rest
     | [] -> ()
   in
   try scan !extra_serve_args with Failure _ -> fatal "bad --groups value");
  with_tmpdir churn_phase;
  if !failures > 0 then begin
    Format.eprintf "federation-smoke: %d failure(s)@." !failures;
    exit 1
  end;
  Format.printf "federation-smoke: OK@."
