(* End-to-end smoke for the service layer, driven through the REAL
   `fairsched` binary (argv.(1)):

   1. crash recovery — start `fairsched serve` with a state dir, submit
      half a golden instance over the socket, SIGKILL the daemon,
      restart it on the same state dir, submit the rest, drain, and
      check ψsp and kernel stats bit-identical to the batch
      Sim.Driver.run of the full instance;
   2. CLI clients — `fairsched submit`, `status`, and `ctl psi` against
      a live daemon must exit 0;
   3. throughput — Loadgen against an ephemeral daemon must sustain the
      acceptance floor of 1000 submissions/s and report ack-latency
      percentiles.

   Any argv after the exe path is passed through to every `serve`
   invocation — `serve_smoke fairsched --groups 2 --shards 2
   --commit-interval 2` re-runs the whole gauntlet against a sharded,
   group-committing daemon.  The smoke parses --groups/--shards/
   --commit-interval out of the passthrough to shape its expectations:
   with groups > 1 the golden ψsp/stats come from per-group batch-
   equivalent engines over Partition.sub_config (grouping changes the
   game — each consortium pools only its own machines), loadgen mirrors
   the partition with one pipelined connection per group, and a group-
   committing daemon must report fewer fsyncs than acks.

   Exit 0 on success, 1 with a one-line reason on any failure. *)

let exe = ref ""
let extra_serve_args = ref []

(* Parsed back out of [extra_serve_args] to shape expectations. *)
let groups = ref 1
let shards = ref 1
let commit_interval_ms = ref 0.
let failures = ref 0

let fail fmt =
  Format.kasprintf
    (fun msg ->
      incr failures;
      Format.eprintf "serve-smoke: FAIL %s@." msg)
    fmt

let fatal fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "serve-smoke: FATAL %s@." msg;
      exit 1)
    fmt

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fairsched-smoke-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  (try rm dir with Sys_error _ | Unix.Unix_error _ -> ());
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- child-process plumbing ---------------------------------------------- *)

let devnull () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644

let spawn_serve args =
  let out = devnull () in
  let pid =
    Unix.create_process !exe
      (Array.of_list
         (Filename.basename !exe :: "serve" :: (args @ !extra_serve_args)))
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  pid

let reap pid =
  try snd (Unix.waitpid [] pid) with Unix.Unix_error _ -> Unix.WEXITED 0

let kill9 pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap pid)

let run_cli args =
  let out = devnull () in
  let pid =
    Unix.create_process !exe
      (Array.of_list (Filename.basename !exe :: args))
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  match reap pid with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255

let connect_retry addr =
  let rec go n =
    match Service.Client.connect addr with
    | Ok c -> c
    | Error e ->
        if n = 0 then fatal "connect: %s" (Service.Client.error_to_string e)
        else begin
          Unix.sleepf 0.05;
          go (n - 1)
        end
  in
  go 200

let request client req =
  match Service.Client.request client req with
  | Ok resp -> resp
  | Error e -> fatal "request: %s" (Service.Client.error_to_string e)

let submit_job client (j : Core.Job.t) =
  match
    request client
      (Service.Protocol.Submit
         {
           org = j.Core.Job.org;
           user = j.Core.Job.user;
           release = j.Core.Job.release;
           size = j.Core.Job.size;
           cid = 0;
           cseq = 0;
           trace = 0;
         })
  with
  | Service.Protocol.Submit_ok { index; _ } ->
      if index <> j.Core.Job.index then
        fail "served rank %d <> batch rank %d" index j.Core.Job.index
  | Service.Protocol.Error { msg; _ } -> fatal "submit rejected: %s" msg
  | _ -> fatal "submit: unexpected response"

(* --- phase 1: crash recovery --------------------------------------------- *)

(* The golden outcome the daemon must reproduce.  Unsharded, that is the
   batch Sim.Driver.run of the full instance.  With --groups G > 1 the
   daemon plays G independent games (each group pools only its own
   machine block), so the golden ψsp/stats come from one batch-equivalent
   Online engine per group over Partition.sub_config, fed the same jobs
   with org ids localized — scattered and summed back to global shape. *)
let expected_outcome ~service ~algorithm ~seed instance =
  if !groups = 1 then
    let batch =
      Sim.Driver.run ~instance
        ~rng:(Fstats.Rng.create ~seed)
        (Algorithms.Registry.find_exn algorithm)
    in
    (batch.Sim.Driver.utilities_scaled, batch.Sim.Driver.stats)
  else begin
    let p = Service.Partition.make service in
    let sessions =
      Array.init !groups (fun g ->
          Service.Online.create (Service.Partition.sub_config p g))
    in
    Array.iter
      (fun (j : Core.Job.t) ->
        let g = Service.Partition.group_of_org p j.Core.Job.org in
        match
          Service.Online.submit sessions.(g)
            ~org:(Service.Partition.local_org p j.Core.Job.org)
            ~user:j.Core.Job.user ~size:j.Core.Job.size
            ~release:j.Core.Job.release ()
        with
        | Ok _ -> ()
        | Error e ->
            fatal "grouped golden submit: %s" (Service.Online.error_to_string e))
      instance.Core.Instance.jobs;
    Array.iter Service.Online.drain sessions;
    let psi =
      Service.Partition.scatter_int p (fun g ->
          Service.Online.psi_scaled sessions.(g))
    in
    let stats =
      Kernel.Stats.total
        (Array.to_list (Array.map Service.Online.stats sessions))
    in
    (psi, stats)
  end

let crash_recovery_phase dir =
  let seed = 2013 and horizon = 20_000 and norgs = 3 and machines = 6 in
  let norgs = if !groups > norgs then !groups else norgs in
  let algorithm = "fairshare" in
  let spec =
    Workload.Scenario.default ~norgs ~machines ~horizon
      Workload.Traces.lpc_egee
  in
  let instance = Workload.Scenario.instance spec ~seed in
  let service =
    match
      Service.Config.make ~groups:!groups
        ~machines:(fst (Workload.Scenario.split_and_map spec ~seed))
        ~horizon ~algorithm ~seed ()
    with
    | Ok c -> c
    | Error msg -> fatal "config: %s" msg
  in
  let expected_psi, expected_stats =
    expected_outcome ~service ~algorithm ~seed instance
  in
  let jobs = instance.Core.Instance.jobs in
  let split = Array.length jobs / 2 in
  if split < 3 then fatal "golden instance too small (%d jobs)" (Array.length jobs);
  let sock = Filename.concat dir "smoke.sock" in
  let state = Filename.concat dir "state" in
  let addr = Service.Addr.Unix_sock sock in
  let serve_args =
    [
      "--listen"; "unix:" ^ sock; "--state"; state;
      "--algorithm"; algorithm; "--orgs"; string_of_int norgs;
      "--machines"; string_of_int machines;
      "--horizon"; string_of_int horizon; "--seed"; string_of_int seed;
    ]
  in
  (* First life: half the stream, a forced snapshot, then kill -9. *)
  let pid = spawn_serve serve_args in
  let client = connect_retry addr in
  Array.iteri (fun i j -> if i < split then submit_job client j) jobs;
  (match request client Service.Protocol.Snapshot with
  | Service.Protocol.Snapshot_ok _ -> ()
  | _ -> fatal "snapshot: unexpected response");
  kill9 pid;
  Service.Client.close client;
  (* Second life: recovery must surface every acked submission, and the
     finished run must match the uninterrupted batch bit for bit. *)
  let pid = spawn_serve serve_args in
  let client = connect_retry addr in
  (match request client Service.Protocol.Status with
  | Service.Protocol.Status_ok st ->
      if st.Service.Protocol.accepted <> split then
        fail "recovered %d acked submissions, expected %d"
          st.Service.Protocol.accepted split
  | _ -> fatal "status: unexpected response");
  (* The CLI clients against the live daemon. *)
  (let code = run_cli [ "status"; "--to"; sock ] in
   if code <> 0 then fail "`fairsched status` exited %d" code);
  (let code = run_cli [ "ctl"; "psi"; "--to"; sock ] in
   if code <> 0 then fail "`fairsched ctl psi` exited %d" code);
  (* Offline durability inspection of the live state dir (flat, or one
     wal-<g>/ segment per group under sharding). *)
  (let code = run_cli [ "ctl"; "wal-check"; state ] in
   if code <> 0 then fail "`fairsched ctl wal-check` exited %d" code);
  Array.iteri (fun i j -> if i >= split then submit_job client j) jobs;
  (match request client (Service.Protocol.Drain { detail = false }) with
  | Service.Protocol.Drain_ok r ->
      if r.Service.Protocol.d_psi_scaled <> expected_psi then
        fail "psi after crash differs from batch";
      if
        Kernel.Stats.to_json r.Service.Protocol.d_stats
        <> Kernel.Stats.to_json expected_stats
      then fail "kernel stats after crash differ from batch"
  | _ -> fatal "drain: unexpected response");
  Service.Client.close client;
  (match reap pid with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> fail "drained daemon exited %d" c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> fail "drained daemon was signaled");
  if !failures = 0 then
    Format.printf "serve-smoke: crash recovery OK (%d jobs, split at %d)@."
      (Array.length jobs) split

(* --- phase 2: submit via CLI against an ephemeral daemon ------------------ *)

let cli_submit_phase dir =
  let sock = Filename.concat dir "cli.sock" in
  let pid =
    spawn_serve
      [
        "--listen"; sock; "--orgs"; "2"; "--machines"; "4";
        "--horizon"; "1000"; "--algorithm"; "fifo";
      ]
  in
  Fun.protect
    ~finally:(fun () -> kill9 pid)
    (fun () ->
      Service.Client.close (connect_retry (Service.Addr.Unix_sock sock));
      let code =
        run_cli [ "submit"; "--to"; sock; "--org"; "1"; "--size"; "5" ]
      in
      if code <> 0 then fail "`fairsched submit` exited %d" code;
      let code = run_cli [ "ctl"; "drain"; "--to"; sock ] in
      if code <> 0 then fail "`fairsched ctl drain` exited %d" code)

(* --- phase 3: loadgen throughput ----------------------------------------- *)

let loadgen_phase dir =
  let seed = 9 and count = 2_000 in
  let spec =
    Workload.Scenario.default ~norgs:3 ~machines:8 ~horizon:1_000_000
      Workload.Traces.lpc_egee
  in
  let sock = Filename.concat dir "load.sock" in
  let pid =
    spawn_serve
      ([
         "--listen"; sock; "--orgs"; "3"; "--machines"; "8";
         "--horizon"; "1000000"; "--seed"; string_of_int seed;
         "--algorithm"; "fairshare";
       ]
      @
      (* Group commit is about WAL fsyncs: give the daemon a state dir
         when that is what this run exercises (otherwise stay ephemeral,
         the classic throughput floor). *)
      if !commit_interval_ms > 0. then
        [ "--state"; Filename.concat dir "load-state" ]
      else [])
  in
  Fun.protect
    ~finally:(fun () -> kill9 pid)
    (fun () ->
      let addr = Service.Addr.Unix_sock sock in
      Service.Client.close (connect_retry addr);
      (* Mirror the daemon's shape: one connection per org-group, and —
         when group commit is on — a pipelined window so one fsync can
         cover many acks. *)
      let window = if !commit_interval_ms > 0. then 32 else 1 in
      let report =
        match
          Service.Loadgen.run
            {
              Service.Loadgen.addr;
              spec;
              seed;
              rate = 0.;
              count;
              drain = false;
              policy = Service.Retry.default;
              timeout_s = 5.0;
              connections = !groups;
              groups = !groups;
              window;
            }
        with
        | Ok r -> r
        | Error msg -> fatal "loadgen: %s" msg
      in
      Format.printf "serve-smoke: loadgen %a@." Service.Loadgen.pp_report
        report;
      if report.Service.Loadgen.accepted <> count then
        fail "loadgen accepted %d of %d" report.Service.Loadgen.accepted count;
      if report.Service.Loadgen.errors <> 0 then
        fail "loadgen transport errors: %d" report.Service.Loadgen.errors;
      if report.Service.Loadgen.ack_latency.Obs.Metrics.count <> count then
        fail "ack-latency histogram incomplete";
      (* The acceptance floor: >= 1000 sustained submissions per second. *)
      if report.Service.Loadgen.achieved_rate < 1000. then
        fail "throughput %.0f/s below the 1000/s floor"
          report.Service.Loadgen.achieved_rate;
      (* The daemon's own view: the partition it reported must be the one
         we asked for, and group commit must have amortized fsyncs. *)
      let client = connect_retry addr in
      (match request client Service.Protocol.Status with
      | Service.Protocol.Status_ok st ->
          if st.Service.Protocol.groups <> !groups then
            fail "daemon reports %d groups, expected %d"
              st.Service.Protocol.groups !groups;
          let w = if !shards < !groups then !shards else !groups in
          let w = if w < 1 then 1 else w in
          if st.Service.Protocol.shards <> w then
            fail "daemon reports %d shards, expected %d"
              st.Service.Protocol.shards w;
          if
            !commit_interval_ms > 0.
            && st.Service.Protocol.fsyncs >= st.Service.Protocol.accepted
          then
            fail "group commit did not amortize: %d fsyncs for %d accepted"
              st.Service.Protocol.fsyncs st.Service.Protocol.accepted
      | _ -> fatal "status: unexpected response");
      (match request client (Service.Protocol.Drain { detail = false }) with
      | Service.Protocol.Drain_ok _ -> ()
      | _ -> fatal "drain: unexpected response");
      Service.Client.close client)

let () =
  if Array.length Sys.argv < 2 then
    fatal "usage: serve_smoke FAIRSCHED_EXE [SERVE_ARGS...]";
  exe :=
    (if Filename.is_relative Sys.argv.(1) then
       Filename.concat (Sys.getcwd ()) Sys.argv.(1)
     else Sys.argv.(1));
  extra_serve_args :=
    Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2));
  (let rec scan = function
     | "--groups" :: v :: rest ->
         groups := int_of_string v;
         scan rest
     | "--shards" :: v :: rest ->
         shards := int_of_string v;
         scan rest
     | "--commit-interval" :: v :: rest ->
         commit_interval_ms := float_of_string v;
         scan rest
     | _ :: rest -> scan rest
     | [] -> ()
   in
   try scan !extra_serve_args
   with Failure _ -> fatal "bad --groups/--shards/--commit-interval value");
  with_tmpdir (fun dir ->
      crash_recovery_phase dir;
      cli_submit_phase dir;
      loadgen_phase dir);
  if !failures > 0 then begin
    Format.eprintf "serve-smoke: %d failure(s)@." !failures;
    exit 1
  end;
  Format.printf "serve-smoke: OK@."
