(* End-to-end smoke for the live observability plane, driven through the
   REAL `fairsched` binary (argv.(1)):

   1. boot a sharded daemon (4 org-groups on 4 worker domains, group
      commit, the rand-4 sampled estimator) with structured NDJSON logs;
   2. saturate it with a rate-limited `fairsched loadgen` subprocess and,
      while the load is still flowing, scrape `ctl metrics` and
      `ctl trace` — the plane must answer mid-run, not just at rest;
   3. after the load drains, bounce one org through `endow leave`/`endow
      join` (the daemon is federated), then scrape again and check the
      merged metrics snapshot carries every fairness SLO instrument
      (per-org ψ/p gauges, per-group max-drift and estimator ε-budget),
      the consortium membership gauges (fed.orgs_active, per-group
      fed.machines_lent_g<g>), the service counters, and the estimator's
      value-cache counters;
   4. run the in-tree `validate-trace` over the merged Chrome trace and
      check it contains spans from the router lane and from EVERY shard
      worker lane, plus client-issued trace ids on routed requests;
   5. check the NDJSON log file parses line by line.

   Exit 0 on success, 1 with a one-line reason on any failure. *)

let exe = ref ""
let failures = ref 0

let fail fmt =
  Format.kasprintf
    (fun msg ->
      incr failures;
      Format.eprintf "obs-smoke: FAIL %s@." msg)
    fmt

let fatal fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "obs-smoke: FATAL %s@." msg;
      exit 1)
    fmt

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fairsched-obs-smoke-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  (try rm dir with Sys_error _ | Unix.Unix_error _ -> ());
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let devnull () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644

let spawn args =
  let out = devnull () in
  let pid =
    Unix.create_process !exe
      (Array.of_list (Filename.basename !exe :: args))
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  pid

let reap pid =
  try snd (Unix.waitpid [] pid) with Unix.Unix_error _ -> Unix.WEXITED 0

let kill9 pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap pid)

let run_cli args =
  match reap (spawn args) with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255

let connect_retry addr =
  let rec go n =
    match Service.Client.connect addr with
    | Ok c -> c
    | Error e ->
        if n = 0 then fatal "connect: %s" (Service.Client.error_to_string e)
        else begin
          Unix.sleepf 0.05;
          go (n - 1)
        end
  in
  go 200

let read_json path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> fatal "read %s: %s" path msg
  | contents -> (
      match Obs.Json.of_string contents with
      | Ok j -> j
      | Error msg -> fatal "parse %s: %s" path msg)

(* --- metrics assertions -------------------------------------------------- *)

let number_of metrics name =
  Option.bind (Obs.Json.member metrics name) (fun v ->
      match v with
      (* Histograms serialize as objects; counters/gauges as numbers. *)
      | Obs.Json.Obj _ -> Obs.Json.(Option.bind (member v "count") get_number)
      | v -> Obs.Json.get_number v)

let check_metrics ~orgs ~shard_groups metrics =
  let require ?(positive = false) name =
    match number_of metrics name with
    | None -> fail "metrics: %s missing from merged snapshot" name
    | Some v -> if positive && v <= 0. then fail "metrics: %s = %g, want > 0" name v
  in
  (* Per-shard engine work merged into one snapshot: every org-group's
     acks and fsyncs are summed here, so the totals must cover the load. *)
  require ~positive:true "service.acks_total";
  require ~positive:true "service.fsync_total";
  require ~positive:true "service.fsync_us";
  (* The live estimator (rand-4) folds coalition values through its
     cross-instant cache on every scheduling instant. *)
  (match
     (number_of metrics "rand.vcache_hits", number_of metrics "rand.vcache_misses")
   with
  | Some h, Some m when h +. m > 0. -> ()
  | Some _, Some _ -> fail "metrics: rand value cache never consulted"
  | _ -> fail "metrics: rand.vcache_{hits,misses} missing");
  require ~positive:true "rand.orders_sampled";
  (* Fairness SLO instruments: ψ and executed-parts gauges for every org,
     drift and ε-budget for every group. *)
  for o = 0 to orgs - 1 do
    require (Printf.sprintf "fair.psi_org%d" o);
    require (Printf.sprintf "fair.p_org%d" o)
  done;
  for g = 0 to shard_groups - 1 do
    require (Printf.sprintf "fair.drift_max_g%d" g);
    require ~positive:true (Printf.sprintf "fair.estimator_budget_g%d" g)
  done;
  (* Consortium membership gauges: the daemon is federated, and after the
     leave/join bounce every org is active again. *)
  (match number_of metrics "fed.orgs_active" with
  | None -> fail "metrics: fed.orgs_active missing from merged snapshot"
  | Some v ->
      if v <> float_of_int orgs then
        fail "metrics: fed.orgs_active = %g, want %d" v orgs);
  for g = 0 to shard_groups - 1 do
    require (Printf.sprintf "fed.machines_lent_g%d" g)
  done

(* --- trace assertions ---------------------------------------------------- *)

let check_trace ~workers trace =
  let events =
    match
      Option.bind (Obs.Json.member trace "traceEvents") Obs.Json.get_list
    with
    | Some evs -> evs
    | None -> fatal "trace: missing traceEvents array"
  in
  if events = [] then fail "trace: no events captured";
  let span_pids = Hashtbl.create 8 in
  let client_traced = ref 0 in
  List.iter
    (fun ev ->
      let str k = Option.bind (Obs.Json.member ev k) Obs.Json.get_string in
      let num k = Option.bind (Obs.Json.member ev k) Obs.Json.get_number in
      (match (str "ph", num "pid") with
      | Some ("X" | "B" | "i" | "I"), Some pid ->
          Hashtbl.replace span_pids (int_of_float pid) ()
      | _ -> ());
      match Option.bind (Obs.Json.member ev "args") (fun a ->
                Option.bind (Obs.Json.member a "trace") Obs.Json.get_number)
      with
      (* Client-issued ids are (cid << 20) | cseq with cid >= 1, so any
         properly stamped request carries at least 2^20. *)
      | Some t when t >= 1048576. -> incr client_traced
      | Some _ | None -> ())
    events;
  if not (Hashtbl.mem span_pids 1) then
    fail "trace: no spans from the router lane (pid 1)";
  for w = 0 to workers - 1 do
    if not (Hashtbl.mem span_pids (2 + w)) then
      fail "trace: no spans from shard worker %d (pid %d)" w (2 + w)
  done;
  if !client_traced = 0 then
    fail "trace: no event carries a client-issued trace id";
  Format.printf
    "obs-smoke: trace OK (%d events, %d with client trace ids, lanes %s)@."
    (List.length events) !client_traced
    (Hashtbl.fold (fun p () acc -> string_of_int p :: acc) span_pids []
    |> List.sort compare |> String.concat ",")

(* --- log assertions ------------------------------------------------------ *)

let check_log path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> fail "log file: %s" msg
  | contents ->
      let lines =
        String.split_on_char '\n' contents
        |> List.filter (fun l -> String.trim l <> "")
      in
      if lines = [] then fail "log file: no NDJSON records"
      else
        List.iteri
          (fun i line ->
            match Obs.Json.of_string line with
            | Error msg -> fail "log line %d is not JSON: %s" (i + 1) msg
            | Ok j ->
                List.iter
                  (fun k ->
                    if Obs.Json.member j k = None then
                      fail "log line %d lacks %S" (i + 1) k)
                  [ "ts_ns"; "level"; "component"; "msg" ])
          lines

(* --- the run ------------------------------------------------------------- *)

let () =
  if Array.length Sys.argv < 2 then fatal "usage: obs_smoke FAIRSCHED_EXE";
  exe :=
    (if Filename.is_relative Sys.argv.(1) then
       Filename.concat (Sys.getcwd ()) Sys.argv.(1)
     else Sys.argv.(1));
  let orgs = 8 and machines = 16 and groups = 4 and shards = 4 in
  let horizon = 1_000_000 and seed = 7 and count = 1_200 in
  with_tmpdir (fun dir ->
      let sock = Filename.concat dir "obs.sock" in
      let log = Filename.concat dir "daemon.ndjson" in
      let shape =
        [
          "--orgs"; string_of_int orgs; "--machines"; string_of_int machines;
          "--horizon"; string_of_int horizon; "--seed"; string_of_int seed;
        ]
      in
      let pid =
        spawn
          ([
             "serve"; "--listen"; "unix:" ^ sock;
             "--state"; Filename.concat dir "state";
             "--algorithm"; "rand-4";
             "--groups"; string_of_int groups;
             "--shards"; string_of_int shards;
             "--commit-interval"; "2"; "--federation";
             "--log-level"; "info"; "--log-file"; log;
           ]
          @ shape)
      in
      Fun.protect
        ~finally:(fun () -> kill9 pid)
        (fun () ->
          let addr = Service.Addr.Unix_sock sock in
          Service.Client.close (connect_retry addr);
          (* Rate-limited so the stream is still flowing when we scrape:
             1200 jobs at 600/s is a ~2 s window. *)
          let load_pid =
            spawn
              ([
                 "loadgen"; "--to"; sock; "--count"; string_of_int count;
                 "--rate"; "600";
                 "--connections"; string_of_int groups;
                 "--groups"; string_of_int groups; "--window"; "8";
               ]
              @ shape)
          in
          Unix.sleepf 0.7;
          (* Mid-run scrape: the plane must answer while shards are busy. *)
          let mid_metrics = Filename.concat dir "metrics-mid.json" in
          let mid_trace = Filename.concat dir "trace-mid.json" in
          (let code = run_cli [ "ctl"; "metrics"; "--to"; sock; mid_metrics ] in
           if code <> 0 then fail "mid-run `ctl metrics` exited %d" code);
          (let code = run_cli [ "ctl"; "trace"; "--to"; sock; mid_trace ] in
           if code <> 0 then fail "mid-run `ctl trace` exited %d" code);
          (match reap load_pid with
          | Unix.WEXITED 0 -> ()
          | Unix.WEXITED c -> fail "loadgen exited %d" c
          | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> fail "loadgen was signaled");
          (* Endowment churn through the real CLI: org 0 leaves the
             consortium and rejoins (readmit-all), so the membership
             gauges have seen an actual transition, not just the boot
             state. *)
          (let code = run_cli [ "endow"; "leave"; "--to"; sock; "--org"; "0" ] in
           if code <> 0 then fail "`endow leave` exited %d" code);
          (let code = run_cli [ "endow"; "join"; "--to"; sock; "--org"; "0" ] in
           if code <> 0 then fail "`endow join` exited %d" code);
          (* Let a worker pump publish the post-join membership: the SLO
             publication is throttled to 0.25 s and the join's own pump may
             fall inside the throttle window, so cover the 1 s idle tick. *)
          Unix.sleepf 1.2;
          (* Post-run scrape: by now every org has submitted, so the full
             gauge set must be live. *)
          let metrics_file = Filename.concat dir "metrics.json" in
          let trace_file = Filename.concat dir "trace.json" in
          (let code = run_cli [ "ctl"; "metrics"; "--to"; sock; metrics_file ] in
           if code <> 0 then fail "`ctl metrics` exited %d" code);
          (let code =
             run_cli
               [ "ctl"; "trace"; "--to"; sock; trace_file; "--limit"; "3000" ]
           in
           if code <> 0 then fail "`ctl trace` exited %d" code);
          check_metrics ~orgs ~shard_groups:groups (read_json metrics_file);
          (* The merged trace must satisfy the in-tree validator and carry
             every lane: router pid 1, shard workers pids 2..2+W-1. *)
          (let code = run_cli [ "validate-trace"; trace_file ] in
           if code <> 0 then fail "`validate-trace` exited %d" code);
          let workers = if shards < groups then shards else groups in
          check_trace ~workers (read_json trace_file);
          check_log log;
          let code = run_cli [ "ctl"; "drain"; "--to"; sock ] in
          if code <> 0 then fail "`ctl drain` exited %d" code));
  if !failures > 0 then begin
    Format.eprintf "obs-smoke: %d failure(s)@." !failures;
    exit 1
  end;
  Format.printf "obs-smoke: OK@."
